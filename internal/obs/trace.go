package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"pmemcpy/internal/pmem"
	"pmemcpy/internal/sim"
)

// Span-style op tracing. A Span covers one library API call (StoreBlock,
// LoadDatum, Compact, ...) in virtual time; the persist and fence events the
// call triggers — the PR 3 persist-point TraceEvent stream — nest under it as
// PointEvents, so a trace answers "which flush belongs to which store".
//
// Attribution works without goroutine-local state because of the engines'
// determinism rule: every Persist and Fence is issued by the coordinator
// goroutine of exactly one rank, and every rank owns one virtual clock. The
// tracer therefore keys its active-span table by *sim.Clock — the clock an
// event is charged to identifies the op that caused it. Worker goroutines
// never persist, so concurrent ranks interleave safely and shard copies
// still attribute to their coordinator's span.

// PointEvent is one persist or fence nested inside a span.
type PointEvent struct {
	// Point is the registered persist-point name ("pmdk.tx.commit", ...).
	Point string `json:"point"`
	// Kind is "persist" or "fence".
	Kind string `json:"kind"`
	// Off and Bytes describe the flushed range (persists only).
	Off   int64 `json:"off,omitempty"`
	Bytes int64 `json:"bytes,omitempty"`
	// AtNS is the virtual time the event completed at.
	AtNS int64 `json:"at_ns"`
}

// Span is one traced API call.
type Span struct {
	// Op is the API operation name ("store_block", "load_datum", ...).
	Op string `json:"op"`
	// ID is the variable id the op addressed (empty for id-less ops).
	ID string `json:"id,omitempty"`
	// Rank is the calling rank.
	Rank int `json:"rank"`
	// StartNS and EndNS bound the op in virtual time.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Err is the op's error text when it failed.
	Err string `json:"err,omitempty"`
	// Points are the persist/fence events the op triggered, in order.
	Points []PointEvent `json:"points,omitempty"`
	// Children are nested API calls (a wrapper op that calls another op).
	Children []*Span `json:"children,omitempty"`
}

// Tracer records spans. It implements the pmem event-sink contract
// (DeviceEvent), so a device wired to it feeds every persist point into the
// currently active span of the issuing rank.
type Tracer struct {
	mu     sync.Mutex
	limit  int
	roots  []*Span
	active map[*sim.Clock][]*Span // per-rank span stack

	dropped atomic.Int64
	// orphanPoints counts device events seen outside any active span (pool
	// open/recovery, Munmap); they are counted rather than recorded so traces
	// stay op-shaped.
	orphanPoints atomic.Int64
}

// DefaultTraceLimit bounds recorded root spans so an unbounded workload
// cannot grow the trace without bound; further spans are counted as dropped.
const DefaultTraceLimit = 1 << 14

// NewTracer returns a tracer keeping at most limit root spans
// (limit <= 0 selects DefaultTraceLimit).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{limit: limit, active: make(map[*sim.Clock][]*Span)}
}

// StartOp opens a span for op on the rank owning clk. Ops on the same clock
// nest: a span started while another is active becomes its child.
func (t *Tracer) StartOp(clk *sim.Clock, op, id string, rank int) {
	sp := &Span{Op: op, ID: id, Rank: rank, StartNS: int64(clk.Now())}
	t.mu.Lock()
	t.active[clk] = append(t.active[clk], sp)
	t.mu.Unlock()
}

// EndOp closes the innermost span on clk, recording the op's error (if any)
// and attaching the span to its parent or the root list.
func (t *Tracer) EndOp(clk *sim.Clock, err error) {
	end := int64(clk.Now())
	t.mu.Lock()
	defer t.mu.Unlock()
	stack := t.active[clk]
	if len(stack) == 0 {
		return
	}
	sp := stack[len(stack)-1]
	sp.EndNS = end
	if err != nil {
		sp.Err = err.Error()
	}
	if len(stack) == 1 {
		delete(t.active, clk)
		if len(t.roots) >= t.limit {
			t.dropped.Add(1)
			return
		}
		t.roots = append(t.roots, sp)
		return
	}
	t.active[clk] = stack[:len(stack)-1]
	parent := stack[len(stack)-2]
	parent.Children = append(parent.Children, sp)
}

// DeviceEvent feeds one persist/fence into the active span of the rank
// owning clk. It satisfies the pmem.EventSink contract.
func (t *Tracer) DeviceEvent(clk *sim.Clock, ev pmem.TraceEvent) {
	at := int64(clk.Now())
	t.mu.Lock()
	stack := t.active[clk]
	if len(stack) == 0 {
		t.mu.Unlock()
		t.orphanPoints.Add(1)
		return
	}
	sp := stack[len(stack)-1]
	sp.Points = append(sp.Points, PointEvent{
		Point: pmem.PointName(ev.Point),
		Kind:  ev.Kind.String(),
		Off:   ev.Off,
		Bytes: ev.Bytes,
		AtNS:  at,
	})
	t.mu.Unlock()
}

// Dropped returns the number of root spans discarded over the limit.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// OrphanPoints returns the number of device events seen outside any op.
func (t *Tracer) OrphanPoints() int64 { return t.orphanPoints.Load() }

// Spans returns a deep copy of the completed root spans in completion order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.roots))
	for _, sp := range t.roots {
		out = append(out, *copySpan(sp))
	}
	return out
}

func copySpan(sp *Span) *Span {
	c := *sp
	c.Points = append([]PointEvent(nil), sp.Points...)
	c.Children = nil
	for _, ch := range sp.Children {
		c.Children = append(c.Children, copySpan(ch))
	}
	return &c
}

// WriteTraceJSON dumps spans as an indented JSON array.
func WriteTraceJSON(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// chromeEvent is one entry of the chrome://tracing "trace event" JSON array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace dumps spans in the chrome://tracing (about:tracing,
// Perfetto) trace-event format: ops as complete ("X") slices on one track
// per rank, persist points as instant events nested inside them. Timestamps
// are virtual microseconds.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	var events []chromeEvent
	var emit func(sp *Span)
	emit = func(sp *Span) {
		name := sp.Op
		if sp.ID != "" {
			name = sp.Op + "(" + sp.ID + ")"
		}
		args := map[string]any{}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		events = append(events, chromeEvent{
			Name: name, Cat: "op", Phase: "X",
			TS: float64(sp.StartNS) / 1e3, Dur: float64(sp.EndNS-sp.StartNS) / 1e3,
			PID: 0, TID: sp.Rank, Args: args,
		})
		for _, pt := range sp.Points {
			events = append(events, chromeEvent{
				Name: pt.Point, Cat: pt.Kind, Phase: "i",
				TS: float64(pt.AtNS) / 1e3, PID: 0, TID: sp.Rank, Scope: "t",
				Args: map[string]any{"bytes": pt.Bytes, "off": fmt.Sprintf("%#x", pt.Off)},
			})
		}
		for _, ch := range sp.Children {
			emit(ch)
		}
	}
	for i := range spans {
		emit(&spans[i])
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
