package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition format
// (one HELP/TYPE header per metric name, cumulative `le` histogram buckets
// with the conventional +Inf terminator). extra labels are appended to every
// series — `pmembench -metrics` uses them to tag series with the library,
// rank count and phase that produced the snapshot.
func (s Snapshot) WriteProm(w io.Writer, extra ...Label) error {
	// Group series by name so HELP/TYPE headers are emitted once per family,
	// preserving snapshot (registration) order of first appearance.
	var names []string
	byName := make(map[string][]MetricValue)
	for _, m := range s.Metrics {
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	sort.Strings(names)
	for _, name := range names {
		family := byName[name]
		if family[0].Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, family[0].Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, family[0].Kind); err != nil {
			return err
		}
		for _, m := range family {
			labels := append(append([]Label(nil), m.Labels...), extra...)
			switch m.Kind {
			case "histogram":
				var cum int64
				for _, b := range m.Buckets {
					cum += b.Count
					le := append(append([]Label(nil), labels...),
						Label{Key: "le", Value: fmt.Sprintf("%d", b.Le)})
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(le), cum); err != nil {
						return err
					}
				}
				inf := append(append([]Label(nil), labels...), Label{Key: "le", Value: "+Inf"})
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(inf), m.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, labelString(labels), m.Sum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels), m.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", name, labelString(labels), m.Value); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// PromString renders the snapshot to a string (test convenience).
func (s Snapshot) PromString(extra ...Label) string {
	var b strings.Builder
	s.WriteProm(&b, extra...)
	return b.String()
}
