// Package obs is the repository's observability layer: counters, gauges and
// power-of-two latency histograms over virtual time, plus span-style op
// tracing built on the persist-point TraceEvent stream of internal/pmem.
//
// The package is deliberately dependency-free (standard library plus sibling
// internal packages only — `make obsdeps` enforces it) and designed so that
// instrumentation compiled into hot paths costs nearly nothing when
// observability is off: every metric is a plain atomic counter, histograms
// and tracing sit behind an enabled check at the call site, and nothing here
// ever touches the virtual clock — observing a store can never change its
// modelled latency.
//
// Three export surfaces are built from the same Registry:
//
//   - Snapshot: a stable, JSON-marshalable struct (PMEM.Metrics(), pinned by
//     a golden-file test);
//   - Prometheus-style text exposition (Snapshot.WriteProm, used by
//     `pmembench -metrics` and `pmemcli stats`);
//   - trace dumps in span JSON or chrome://tracing format (trace.go).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric. Labels distinguish
// series of the same name (op="store_block", path="parallel").
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistogramBuckets is the number of power-of-two buckets a histogram carries:
// bucket i counts observations v with 2^(i-1) <= v < 2^i (bucket 0 holds
// v <= 0). 64 buckets cover every int64, so no observation is ever clipped.
const HistogramBuckets = 64

// Histogram is a fixed-bucket power-of-two histogram. Buckets are atomic, so
// concurrent Observe calls never contend on a lock; the trade against a
// mutex-protected variable-bucket design is deliberate — per-op latency
// recording sits on every store and load.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistogramBuckets]atomic.Int64
}

// bucketIndex returns the bucket covering v: 0 for v <= 0, else
// floor(log2(v)) + 1, i.e. the number of significant bits.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistogramBuckets {
		i = HistogramBuckets - 1
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i (observations in
// bucket i are < BucketBound(i)), with the last bucket unbounded.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= HistogramBuckets-1 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one registered series.
type metric struct {
	kind   metricKind
	name   string
	help   string
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() int64
}

// Registry holds a set of named metrics. Registration takes the registry
// lock; the returned metric handles are lock-free. Registering the same
// (name, labels) twice returns the original instrument, so independent code
// paths may share a series.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// seriesKey builds the dedup key for (name, labels).
func seriesKey(name string, labels []Label) string {
	k := name
	for _, l := range labels {
		k += "\x00" + l.Key + "\x01" + l.Value
	}
	return k
}

func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(m.name, m.labels)
	if prev, ok := r.index[key]; ok {
		return prev
	}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{kind: kindCounter, name: name, help: help, labels: labels, ctr: new(Counter)})
	return m.ctr
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(&metric{kind: kindGauge, name: name, help: help, labels: labels, gauge: new(Gauge)})
	return m.gauge
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.register(&metric{kind: kindHistogram, name: name, help: help, labels: labels, hist: new(Histogram)})
	return m.hist
}

// CounterFunc registers a counter series whose value is read from fn at
// snapshot time — the bridge for counters that already live elsewhere
// (allocator stats, device persist counts) without double-counting.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&metric{kind: kindCounterFunc, name: name, help: help, labels: labels, fn: fn})
}

// GaugeFunc registers a gauge series computed by fn at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&metric{kind: kindGaugeFunc, name: name, help: help, labels: labels, fn: fn})
}

// MetricValue is one series in a Snapshot. Exactly one of Value (counters,
// gauges) or the histogram fields is meaningful, per Kind.
type MetricValue struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"` // "counter" | "gauge" | "histogram"
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value,omitempty"`
	// Histogram fields: Count/Sum plus the non-empty buckets.
	Count   int64            `json:"count,omitempty"`
	Sum     int64            `json:"sum,omitempty"`
	Buckets []HistogramSlice `json:"buckets,omitempty"`
}

// HistogramSlice is one non-empty histogram bucket: Count observations below
// the exclusive upper bound Le (power of two).
type HistogramSlice struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time copy of every registered series, in a stable
// order (registration order, then name/labels). It is the schema the
// golden-file test pins and the input to the Prometheus exposition writer.
type Snapshot struct {
	Metrics []MetricValue `json:"metrics"`
}

// Snapshot captures every series. Values of different series are read at
// slightly different instants; within the repository's bulk-synchronous
// usage (snapshot after Munmap or between phases) this is exact.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	s := Snapshot{Metrics: make([]MetricValue, 0, len(metrics))}
	for _, m := range metrics {
		mv := MetricValue{Name: m.name, Help: m.help, Labels: m.labels}
		switch m.kind {
		case kindCounter:
			mv.Kind = "counter"
			mv.Value = m.ctr.Load()
		case kindCounterFunc:
			mv.Kind = "counter"
			mv.Value = m.fn()
		case kindGauge:
			mv.Kind = "gauge"
			mv.Value = m.gauge.Load()
		case kindGaugeFunc:
			mv.Kind = "gauge"
			mv.Value = m.fn()
		case kindHistogram:
			mv.Kind = "histogram"
			mv.Count = m.hist.count.Load()
			mv.Sum = m.hist.sum.Load()
			for i := 0; i < HistogramBuckets; i++ {
				if c := m.hist.buckets[i].Load(); c > 0 {
					mv.Buckets = append(mv.Buckets, HistogramSlice{Le: BucketBound(i), Count: c})
				}
			}
		}
		s.Metrics = append(s.Metrics, mv)
	}
	sort.SliceStable(s.Metrics, func(i, j int) bool {
		if s.Metrics[i].Name != s.Metrics[j].Name {
			return s.Metrics[i].Name < s.Metrics[j].Name
		}
		return labelString(s.Metrics[i].Labels) < labelString(s.Metrics[j].Labels)
	})
	return s
}

// Get returns the snapshot value of the named series, summed across label
// sets (histograms contribute their Count). Convenience for tests and tools.
func (s Snapshot) Get(name string) int64 {
	var total int64
	for _, m := range s.Metrics {
		if m.Name != name {
			continue
		}
		if m.Kind == "histogram" {
			total += m.Count
		} else {
			total += m.Value
		}
	}
	return total
}

// labelString renders labels in prom syntax ({k="v",...}), empty for none.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	out := "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return out + "}"
}
