package burstbuffer

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pmemcpy/internal/bytesview"
	"pmemcpy/internal/core"
	"pmemcpy/internal/mpi"
	"pmemcpy/internal/node"
	"pmemcpy/internal/serial"
	"pmemcpy/internal/sim"
)

func newNode() *node.Node {
	n := node.New(sim.DefaultConfig(), 64<<20)
	n.Machine.SetConcurrency(1)
	return n
}

// populate fills a store with two arrays and a scalar, single rank.
func populate(t *testing.T, n *node.Node, path string) {
	t.Helper()
	_, err := mpi.Run(n.Machine, 1, func(c *mpi.Comm) error {
		p, err := core.Mmap(c, n, path)
		if err != nil {
			return err
		}
		for v := 0; v < 2; v++ {
			id := fmt.Sprintf("rect%d", v)
			if err := p.Alloc(id, serial.Float64, []uint64{128}); err != nil {
				return err
			}
			vals := make([]float64, 128)
			for i := range vals {
				vals[i] = float64(v*1000 + i)
			}
			if err := p.StoreBlock(id, []uint64{0}, []uint64{128}, bytesview.Bytes(vals)); err != nil {
				return err
			}
		}
		d := &serial.Datum{Type: serial.Int64, Payload: bytesview.Bytes([]int64{77})}
		if err := p.StoreDatum("step", d); err != nil {
			return err
		}
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPFSPutGetRoundTrip(t *testing.T) {
	pfs := NewPFS(0, 0)
	pfs.Pool().SetConcurrency(1)
	clk := new(sim.Clock)
	if err := pfs.Put(clk, "a/b", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := pfs.Get(clk, "a/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("Get = %q", got)
	}
	if _, err := pfs.Get(clk, "missing"); err == nil {
		t.Fatal("Get(missing) succeeded")
	}
	if pfs.Size("a/b") != 7 || pfs.Size("missing") != -1 {
		t.Fatal("Size wrong")
	}
}

func TestPFSChargesSlowTier(t *testing.T) {
	pfs := NewPFS(2*sim.GB, time.Millisecond)
	pfs.Pool().SetConcurrency(1)
	clk := new(sim.Clock)
	// 2 GB at 2 GB/s = 1 s, plus 1 ms latency.
	if err := pfs.Put(clk, "big", make([]byte, 2_000_000_000/1000)); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + time.Millisecond // latency + 2MB/2GBps
	if got := clk.Now(); got != want {
		t.Fatalf("Put cost = %v, want %v", got, want)
	}
}

func TestPFSIsolatesStoredData(t *testing.T) {
	pfs := NewPFS(0, 0)
	clk := new(sim.Clock)
	buf := []byte("mutable")
	if err := pfs.Put(clk, "x", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, err := pfs.Get(clk, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "mutable" {
		t.Fatalf("PFS aliased caller buffer: %q", got)
	}
	got[0] = 'Y'
	again, _ := pfs.Get(clk, "x")
	if string(again) != "mutable" {
		t.Fatalf("Get aliased stored bytes: %q", again)
	}
}

func TestDrainAndRestoreRoundTrip(t *testing.T) {
	n := newNode()
	populate(t, n, "/bb.pool")
	pfs := NewPFS(0, 0)
	pfs.Pool().SetConcurrency(1)

	// Drain.
	_, err := mpi.Run(n.Machine, 1, func(c *mpi.Comm) error {
		p, err := core.Mmap(c, n, "/bb.pool")
		if err != nil {
			return err
		}
		fl := NewFlusher(pfs)
		moved, err := fl.DrainStore(p, "ckpt/")
		if err != nil {
			return err
		}
		if moved < 2*128*8 {
			return fmt.Errorf("moved only %d bytes", moved)
		}
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := pfs.List("ckpt/")
	if len(objs) != 3 {
		t.Fatalf("PFS objects = %v", objs)
	}

	// Restore into a fresh store on a fresh node and verify.
	n2 := newNode()
	_, err = mpi.Run(n2.Machine, 1, func(c *mpi.Comm) error {
		p, err := core.Mmap(c, n2, "/restored.pool")
		if err != nil {
			return err
		}
		if _, err := Restore(p, pfs, "ckpt/"); err != nil {
			return err
		}
		for v := 0; v < 2; v++ {
			id := fmt.Sprintf("rect%d", v)
			dst := make([]byte, 128*8)
			if err := p.LoadBlock(id, []uint64{0}, []uint64{128}, dst); err != nil {
				return err
			}
			vals := bytesview.OfCopy[float64](dst)
			for i, got := range vals {
				if got != float64(v*1000+i) {
					return fmt.Errorf("%s[%d] = %g", id, i, got)
				}
			}
		}
		d, err := p.LoadDatum("step")
		if err != nil {
			return err
		}
		if bytesview.OfCopy[int64](d.Payload)[0] != 77 {
			return fmt.Errorf("step = %v", d.Payload)
		}
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDrainWithEviction(t *testing.T) {
	n := newNode()
	populate(t, n, "/evict.pool")
	pfs := NewPFS(0, 0)
	_, err := mpi.Run(n.Machine, 1, func(c *mpi.Comm) error {
		p, err := core.Mmap(c, n, "/evict.pool")
		if err != nil {
			return err
		}
		fl := NewFlusher(pfs)
		fl.Evict = true
		if _, err := fl.DrainStore(p, "out/"); err != nil {
			return err
		}
		keys, err := p.Keys()
		if err != nil {
			return err
		}
		if len(keys) != 0 {
			return fmt.Errorf("keys remain after eviction: %v", keys)
		}
		// Data must still be safe on the PFS.
		if len(pfs.List("out/")) != 3 {
			return fmt.Errorf("PFS objects = %v", pfs.List("out/"))
		}
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDrainSlowerThanPMEMStore(t *testing.T) {
	// The tiering premise: flushing to the PFS costs far more virtual time
	// than the PMEM store did, which is why buffering in PMEM absorbs the
	// burst.
	n := newNode()
	var storeTime, drainTime time.Duration
	_, err := mpi.Run(n.Machine, 1, func(c *mpi.Comm) error {
		p, err := core.Mmap(c, n, "/burst.pool")
		if err != nil {
			return err
		}
		vals := make([]float64, 1<<20/8)
		t0 := c.Clock().Now()
		if err := p.Alloc("burst", serial.Float64, []uint64{uint64(len(vals))}); err != nil {
			return err
		}
		if err := p.StoreBlock("burst", []uint64{0}, []uint64{uint64(len(vals))},
			bytesview.Bytes(vals)); err != nil {
			return err
		}
		storeTime = c.Clock().Now() - t0

		pfs := NewPFS(0, 0)
		pfs.Pool().SetConcurrency(1)
		t1 := c.Clock().Now()
		if _, err := NewFlusher(pfs).DrainStore(p, "d/"); err != nil {
			return err
		}
		drainTime = c.Clock().Now() - t1
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
	if drainTime <= storeTime {
		t.Fatalf("drain %v not slower than PMEM store %v", drainTime, storeTime)
	}
}

func TestObjectCodecErrors(t *testing.T) {
	if _, _, _, _, err := decodeObject([]byte{objArray}); err == nil {
		t.Error("truncated object accepted")
	}
	if _, _, _, _, err := decodeObject([]byte{0xFF, 0, 0}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, _, _, _, err := decodeObject([]byte{objArray, byte(serial.Float64), 2, 1, 2, 3}); err == nil {
		t.Error("truncated dims accepted")
	}
}

func TestListPrefixFilter(t *testing.T) {
	pfs := NewPFS(0, 0)
	clk := new(sim.Clock)
	for _, name := range []string{"a/1", "a/2", "b/1"} {
		if err := pfs.Put(clk, name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := pfs.List("a/")
	if len(got) != 2 || !strings.HasPrefix(got[0], "a/") {
		t.Fatalf("List = %v", got)
	}
}
