// Package burstbuffer implements the storage tier behind the node-local
// PMEM in the paper's machine architecture (Figure 1): a shared burst
// buffer / parallel filesystem that node-local data is asynchronously
// flushed to after serialization — "a burst buffer, such as DataWarp, will
// then be triggered to asynchronously flush the buffered data to mass
// storage. The data will be stored in the same format as it was produced."
//
// The PFS model is deliberately simple: a shared object namespace with high
// per-operation latency and a node-uplink bandwidth pool far below PMEM's.
// The Flusher drains a pMEMCPY store to it variable-by-variable in the
// produced (per-block) format, optionally evicting drained data from PMEM to
// free buffer capacity, and Restore stages data back in — the prefetch path
// of a multi-tier buffering system like Hermes.
package burstbuffer

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pmemcpy/internal/core"
	"pmemcpy/internal/serial"
	"pmemcpy/internal/sim"
)

// Default PFS characteristics: a capacity-tier burst buffer reachable over
// the fabric — milliseconds of latency, a couple of GB/s per node uplink.
const (
	DefaultBandwidth = 2.0 * sim.GB
	DefaultLatency   = 500 * time.Microsecond
)

// PFS is the shared mass-storage tier.
type PFS struct {
	mu      sync.Mutex
	objects map[string][]byte

	pool    *sim.Pool
	latency time.Duration
}

// NewPFS builds a PFS with the given node-uplink bandwidth (bytes/second)
// and per-operation latency. Zero values select the defaults.
func NewPFS(bandwidth float64, latency time.Duration) *PFS {
	if bandwidth <= 0 {
		bandwidth = DefaultBandwidth
	}
	if latency <= 0 {
		latency = DefaultLatency
	}
	return &PFS{
		objects: make(map[string][]byte),
		pool:    sim.NewPool("pfs", bandwidth),
		latency: latency,
	}
}

// Pool exposes the PFS bandwidth pool (the harness presets its concurrency
// alongside the node pools).
func (p *PFS) Pool() *sim.Pool { return p.pool }

// Put stores an object durably on the PFS, charging clk for the transfer.
func (p *PFS) Put(clk *sim.Clock, name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	clk.Advance(p.latency)
	clk.Advance(p.pool.Cost(int64(len(data))))
	p.mu.Lock()
	p.objects[name] = cp
	p.mu.Unlock()
	return nil
}

// Get reads an object back, charging clk for the transfer.
func (p *PFS) Get(clk *sim.Clock, name string) ([]byte, error) {
	p.mu.Lock()
	data, ok := p.objects[name]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("burstbuffer: object %q not found", name)
	}
	clk.Advance(p.latency)
	clk.Advance(p.pool.Cost(int64(len(data))))
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// List returns the names of objects under prefix, sorted.
func (p *PFS) List(prefix string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for name := range p.objects {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns an object's size, or -1 if absent.
func (p *PFS) Size(name string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if data, ok := p.objects[name]; ok {
		return int64(len(data))
	}
	return -1
}

// Flusher drains pMEMCPY stores to a PFS. It runs on the caller's rank (in a
// real deployment this is a background agent overlapping the application;
// the drain's virtual time is therefore reported separately from application
// phase times rather than added to them).
type Flusher struct {
	pfs *PFS
	// Evict removes each variable from PMEM once it is safely on the PFS,
	// freeing buffer capacity for the next burst.
	Evict bool
}

// NewFlusher builds a flusher targeting pfs.
func NewFlusher(pfs *PFS) *Flusher {
	return &Flusher{pfs: pfs}
}

// objectName maps a store id to its PFS object name.
func objectName(prefix, id string) string { return prefix + id }

// DrainStore copies every id of the store to the PFS under prefix and
// returns the number of payload bytes moved. Data travels in the same
// format it was produced: each variable's stored blocks are read from PMEM
// and written as one self-describing PFS object (dims + per-block records),
// with no cross-variable restructuring.
func (f *Flusher) DrainStore(p *core.PMEM, prefix string) (int64, error) {
	keys, err := p.Keys()
	if err != nil {
		return 0, err
	}
	sort.Strings(keys)
	var moved int64
	for _, id := range keys {
		if strings.HasSuffix(id, core.DimsSuffix) {
			continue // carried inside the owning variable's object
		}
		n, err := f.drainOne(p, prefix, id)
		if err != nil {
			return moved, fmt.Errorf("draining %q: %w", id, err)
		}
		moved += n
		if f.Evict {
			if _, err := p.Delete(id); err != nil {
				return moved, fmt.Errorf("evicting %q: %w", id, err)
			}
			if _, err := p.Delete(id + core.DimsSuffix); err != nil {
				return moved, fmt.Errorf("evicting %q dims: %w", id, err)
			}
		}
	}
	return moved, nil
}

// drainOne serializes one variable (or scalar value) into a PFS object.
func (f *Flusher) drainOne(p *core.PMEM, prefix, id string) (int64, error) {
	clk := p.Comm().Clock()
	if dtype, dims, err := p.LoadDims(id); err == nil {
		// Array variable: read the full extent from PMEM and ship it with
		// its dims.
		elems := uint64(1)
		for _, d := range dims {
			elems *= d
		}
		buf := make([]byte, elems*uint64(dtype.Size()))
		offs := make([]uint64, len(dims))
		if err := p.LoadBlock(id, offs, dims, buf); err != nil {
			return 0, err
		}
		obj := encodeArrayObject(dtype, dims, buf)
		if err := f.pfs.Put(clk, objectName(prefix, id), obj); err != nil {
			return 0, err
		}
		return int64(len(buf)), nil
	}
	// Scalar/string/struct value.
	d, err := p.LoadDatum(id)
	if err != nil {
		return 0, err
	}
	obj := encodeValueObject(d)
	if err := f.pfs.Put(clk, objectName(prefix, id), obj); err != nil {
		return 0, err
	}
	return int64(len(d.Payload)), nil
}

// Restore stages every PFS object under prefix back into the store (the
// prefetch path). It returns the number of payload bytes moved.
func Restore(p *core.PMEM, pfs *PFS, prefix string) (int64, error) {
	clk := p.Comm().Clock()
	var moved int64
	for _, name := range pfs.List(prefix) {
		id := strings.TrimPrefix(name, prefix)
		obj, err := pfs.Get(clk, name)
		if err != nil {
			return moved, err
		}
		kind, dtype, dims, payload, err := decodeObject(obj)
		if err != nil {
			return moved, fmt.Errorf("restoring %q: %w", id, err)
		}
		switch kind {
		case objArray:
			if err := p.Alloc(id, dtype, dims); err != nil {
				return moved, err
			}
			offs := make([]uint64, len(dims))
			if err := p.StoreBlock(id, offs, dims, payload); err != nil {
				return moved, err
			}
		case objValue:
			d := &serial.Datum{Type: dtype, Payload: payload}
			if err := p.StoreDatum(id, d); err != nil {
				return moved, err
			}
		}
		moved += int64(len(payload))
	}
	return moved, nil
}

// --- PFS object format: same idea as the store's records, self-describing.

const (
	objArray = 0xA1
	objValue = 0xA2
)

func encodeArrayObject(dtype serial.DType, dims []uint64, payload []byte) []byte {
	out := make([]byte, 0, 2+len(dims)*8+len(payload))
	out = append(out, objArray, byte(dtype), byte(len(dims)))
	var tmp [8]byte
	for _, d := range dims {
		putU64(tmp[:], d)
		out = append(out, tmp[:]...)
	}
	return append(out, payload...)
}

func encodeValueObject(d *serial.Datum) []byte {
	out := make([]byte, 0, 2+len(d.Payload))
	out = append(out, objValue, byte(d.Type), 0)
	return append(out, d.Payload...)
}

func decodeObject(obj []byte) (kind byte, dtype serial.DType, dims []uint64, payload []byte, err error) {
	if len(obj) < 3 {
		return 0, 0, nil, nil, fmt.Errorf("object truncated")
	}
	kind, dtype = obj[0], serial.DType(obj[1])
	nd := int(obj[2])
	pos := 3
	if kind == objArray {
		if len(obj) < pos+8*nd {
			return 0, 0, nil, nil, fmt.Errorf("object dims truncated")
		}
		dims = make([]uint64, nd)
		for i := range dims {
			dims[i] = getU64(obj[pos:])
			pos += 8
		}
	} else if kind != objValue {
		return 0, 0, nil, nil, fmt.Errorf("unknown object kind %#x", kind)
	}
	return kind, dtype, dims, obj[pos:], nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
