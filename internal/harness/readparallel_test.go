package harness

import (
	"testing"

	"pmemcpy/internal/core"
)

// TestParallelReadSpeedup pins the acceptance bar for the gather engine: with
// 8 workers per rank the read phase of the scaled 40 GB workload must be at
// least 1.5x faster than the serial path. Writes stay serial in both runs so
// only the read column moves. Verify is on (smallParams), so the speedup is
// measured over byte-exact reads.
func TestParallelReadSpeedup(t *testing.T) {
	base := smallParams(1)
	base.Vars = 2 // two large slabs per rank, each far above the engine's floor

	serial, err := Run(core.Library{}, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.ReadParallelism = 8
	parallel, err := Run(core.Library{}, par)
	if err != nil {
		t.Fatal(err)
	}
	sp := Speedup(serial, parallel, "read")
	t.Logf("read: serial=%v parallel(8)=%v speedup=%.2fx", serial.Read, parallel.Read, sp)
	if sp < 1.5 {
		t.Errorf("read parallelism 8 speedup %.2fx, want >= 1.5x", sp)
	}
	// The write engine is untouched: the two write columns must agree.
	if serial.Write != parallel.Write {
		t.Errorf("write time moved with ReadParallelism: serial=%v parallel=%v",
			serial.Write, parallel.Write)
	}
}

// TestReadParallelismSweepMonotone mirrors the write-side sweep: read time
// should improve (or plateau at the device limit) as gather workers increase.
func TestReadParallelismSweepMonotone(t *testing.T) {
	prev := int64(0)
	for _, rpar := range []int{1, 2, 4, 8} {
		p := smallParams(1)
		p.Vars = 2
		p.ReadParallelism = rpar
		res, err := Run(core.Library{}, p)
		if err != nil {
			t.Fatalf("rpar=%d: %v", rpar, err)
		}
		t.Logf("rpar=%d read=%v", rpar, res.Read)
		if prev != 0 && int64(res.Read) > prev+prev/20 {
			t.Errorf("rpar=%d read %v regressed vs previous %v", rpar, res.Read, prev)
		}
		prev = int64(res.Read)
	}
}
