package harness

import (
	"testing"

	"pmemcpy/internal/core"
)

// TestParallelWriteSpeedup pins the acceptance bar for the sharded copy
// engine: with 8 workers per rank a large-slab write phase must be at least
// 1.5x faster than the serial path. Virtual time makes the ratio exact and
// host-independent.
func TestParallelWriteSpeedup(t *testing.T) {
	base := smallParams(1)
	base.Vars = 2 // two large slabs per rank, each far above parallelMinBytes

	serial, err := Run(core.Library{}, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 8
	parallel, err := Run(core.Library{}, par)
	if err != nil {
		t.Fatal(err)
	}
	sp := Speedup(serial, parallel, "write")
	t.Logf("write: serial=%v parallel(8)=%v speedup=%.2fx", serial.Write, parallel.Write, sp)
	if sp < 1.5 {
		t.Errorf("parallelism 8 write speedup %.2fx, want >= 1.5x", sp)
	}
	// Reads are unaffected by the write-side engine and must stay correct
	// (Verify is on in smallParams): shard blocks reassemble transparently.
	if parallel.Read <= 0 {
		t.Errorf("degenerate read time %v", parallel.Read)
	}
}

// TestParallelismSweepMonotone reproduces the paper's procs sweep as a
// goroutine sweep: write throughput should improve (or at worst plateau at
// the device limit) as workers increase.
func TestParallelismSweepMonotone(t *testing.T) {
	prev := int64(0)
	for _, par := range []int{1, 2, 4, 8} {
		p := smallParams(1)
		p.Vars = 2
		p.Parallelism = par
		res, err := Run(core.Library{}, p)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		t.Logf("par=%d write=%v", par, res.Write)
		if prev != 0 && int64(res.Write) > prev+prev/20 {
			t.Errorf("par=%d write %v regressed vs previous %v", par, res.Write, prev)
		}
		prev = int64(res.Write)
	}
}
