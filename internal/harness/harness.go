// Package harness runs the paper's experiments: it sweeps (library, process
// count) combinations over the 3-D domain workload, measures per-phase
// virtual time exactly as the paper does ("wall-clock time from the point at
// which the file is opened/mmapped to when it is closed", max over ranks),
// and renders the Figure 6/7 series.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pmemcpy/internal/bytesview"
	"pmemcpy/internal/mpi"
	"pmemcpy/internal/node"
	"pmemcpy/internal/obs"
	"pmemcpy/internal/pio"
	"pmemcpy/internal/sim"
	"pmemcpy/internal/workload"
)

// Params configures one experiment run.
type Params struct {
	// TotalBytes is the modelled workload size (the paper: 40 GB).
	TotalBytes int64
	// Vars is the number of 3-D rectangles (the paper: 10).
	Vars int
	// Ranks is the number of processes.
	Ranks int
	// Config is the machine model (already scaled if Scale was applied).
	Config sim.Config
	// DeviceSize is the PMEM device capacity; 0 sizes it to fit the
	// workload with headroom.
	DeviceSize int64
	// Verify makes the read phase check every byte against the generator.
	Verify bool
	// Runs averages over this many repetitions (the paper: 3).
	Runs int
	// Pattern selects the read access pattern (default: the paper's
	// symmetric read-back).
	Pattern workload.Pattern
	// ReadRanks overrides the reader count for the restart pattern
	// (0 = same as Ranks).
	ReadRanks int
	// Parallelism asks the library for this many copy workers per rank
	// (libraries that do not implement pio.Parallelizable ignore it).
	Parallelism int
	// ReadParallelism asks the library for this many gather workers per rank
	// (libraries that do not implement pio.ReadParallelizable ignore it;
	// 0 follows Parallelism, 1 forces serial reads).
	ReadParallelism int
	// Metrics asks the library for instrumented sessions (libraries that do
	// not implement pio.Instrumentable ignore it) and captures an
	// observability snapshot per phase into the Result.
	Metrics bool
	// VerifyReads asks the library for checksum-verified reads at the given
	// mode (0 = off, 1 = sampled, 2 = full; libraries that do not implement
	// pio.Verifiable ignore it). Used by the integrity ablation (E15).
	VerifyReads int
	// Async asks the library for asynchronously pipelined writes (libraries
	// that do not implement pio.Asyncable ignore it): writes queue and
	// group-commit in batches of up to CoalesceWindow submissions, and Close
	// drains the queue. Used by the coalescing ablation (E16).
	Async bool
	// CoalesceWindow is the async batch size (0 = library default).
	CoalesceWindow int
	// MaxInflight is the async queue bound (0 = library default).
	MaxInflight int
	// Pools shards the namespace across this many PMEM pools (libraries
	// that do not implement pio.Poolable ignore it; <=1 = single pool). The
	// harness provisions the node with one device per pool, each of
	// DeviceSize bytes. Used by the multi-pool ablation (E17).
	Pools int
}

// Result is one (library, ranks) measurement.
type Result struct {
	Library string
	Ranks   int
	Bytes   int64
	Write   time.Duration
	Read    time.Duration
	// WriteMetrics and ReadMetrics are the per-phase observability snapshots,
	// captured on rank 0 after the collective Close (so every rank's
	// operations are included). Empty unless Params.Metrics was set and the
	// library's sessions implement pio.Instrumented; for multi-run averages
	// they are the last run's snapshots.
	WriteMetrics obs.Snapshot
	ReadMetrics  obs.Snapshot
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-8s n=%-3d write=%8.3fs read=%8.3fs (%.2f GB)",
		r.Library, r.Ranks, r.Write.Seconds(), r.Read.Seconds(), float64(r.Bytes)/1e9)
}

// Run executes the write+read experiment for lib under p and returns the
// averaged phase times.
func Run(lib pio.Library, p Params) (Result, error) {
	if p.Runs <= 0 {
		p.Runs = 1
	}
	lib = configure(lib, p)
	res := Result{Library: lib.Name(), Ranks: p.Ranks}
	for i := 0; i < p.Runs; i++ {
		one, err := runOnce(lib, p)
		if err != nil {
			return res, fmt.Errorf("%s n=%d run %d: %w", lib.Name(), p.Ranks, i, err)
		}
		res.Bytes = one.Bytes
		res.Write += one.Write
		res.Read += one.Read
		res.WriteMetrics = one.WriteMetrics
		res.ReadMetrics = one.ReadMetrics
	}
	res.Write /= time.Duration(p.Runs)
	res.Read /= time.Duration(p.Runs)
	return res, nil
}

// configure applies the run parameters' optional capabilities to the library.
// The supported path is one pio.Configurable call: wrappers forward Configure
// explicitly, so a library's capabilities cannot be hidden by an embedding
// wrapper the way the old per-feature type assertions were (every wrapped
// assertion silently failed and the run measured an unconfigured store).
// Libraries that predate Configurable fall back to the deprecated probes.
func configure(lib pio.Library, p Params) pio.Library {
	caps := pio.Capabilities{
		ReadParallelism: p.ReadParallelism,
		Metrics:         p.Metrics,
		VerifyReads:     p.VerifyReads,
		Async:           p.Async,
		Pools:           p.Pools,
	}
	if p.Parallelism > 1 {
		caps.Parallelism = p.Parallelism
	}
	if p.Async {
		caps.CoalesceWindow = p.CoalesceWindow
		caps.MaxInflight = p.MaxInflight
	}
	if cz, ok := lib.(pio.Configurable); ok {
		return cz.Configure(caps)
	}
	if caps.Parallelism > 1 {
		if pz, ok := lib.(pio.Parallelizable); ok {
			lib = pz.WithParallelism(caps.Parallelism)
		}
	}
	if caps.ReadParallelism != 0 {
		if rp, ok := lib.(pio.ReadParallelizable); ok {
			lib = rp.WithReadParallelism(caps.ReadParallelism)
		}
	}
	if caps.Metrics {
		if iz, ok := lib.(pio.Instrumentable); ok {
			lib = iz.WithMetrics()
		}
	}
	if caps.VerifyReads != 0 {
		if vz, ok := lib.(pio.Verifiable); ok {
			lib = vz.WithVerifyReads(caps.VerifyReads)
		}
	}
	if caps.Async {
		if az, ok := lib.(pio.Asyncable); ok {
			lib = az.WithAsync(caps.CoalesceWindow, caps.MaxInflight)
		}
	}
	if caps.Pools > 1 {
		if pl, ok := lib.(pio.Poolable); ok {
			lib = pl.WithPools(caps.Pools)
		}
	}
	return lib
}

func runOnce(lib pio.Library, p Params) (Result, error) {
	spec, err := workload.NewSpec(p.TotalBytes, p.Vars, p.Ranks)
	if err != nil {
		return Result{}, err
	}
	devSize := p.DeviceSize
	if devSize == 0 {
		// Data + serialization headers + pool metadata headroom.
		devSize = spec.TotalBytes() + spec.TotalBytes()/4 + (64 << 20)
		if p.Pools > 1 {
			// Striping spreads the data evenly; each member device holds its
			// share plus per-pool metadata headroom.
			devSize = devSize/int64(p.Pools) + (64 << 20)
		}
	}
	var nopts []node.Option
	if p.Pools > 1 {
		nopts = append(nopts, node.WithPMEMPools(p.Pools))
	}
	n := node.New(p.Config, devSize, nopts...)

	// ---- Write phase: open/mmap .. close, max over ranks ----
	n.Machine.SetConcurrency(p.Ranks)
	var writeTime time.Duration
	var writeSnap, readSnap obs.Snapshot
	_, err = mpi.Run(n.Machine, p.Ranks, func(c *mpi.Comm) error {
		rank := c.Rank()
		buf := make([]float64, spec.BlockElems())
		// The paper generates the cube, then times the I/O: generation is
		// excluded from the timed window by sampling the clock around it.
		t0 := c.Clock().Now()
		w, err := lib.OpenWrite(c, n, "/exp.data")
		if err != nil {
			return err
		}
		for _, v := range spec.Vars {
			if err := w.DefineVar(v); err != nil {
				return err
			}
		}
		var genTime time.Duration
		for vi, v := range spec.Vars {
			g0 := c.Clock().Now()
			vals := spec.Fill(c, n.Machine, vi, rank, buf)
			genTime += c.Clock().Now() - g0
			offs, counts := spec.Block(rank)
			if err := w.Write(v.Name, offs, counts, f64bytes(vals)); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		// Close is collective, so by the time rank 0 returns from it every
		// rank's operations have landed in the shared registry.
		if p.Metrics && rank == 0 {
			if im, ok := w.(pio.Instrumented); ok {
				writeSnap = im.Metrics()
			}
		}
		dt := c.Clock().Now() - t0 - genTime
		mx, err := c.AllreduceU64(uint64(dt), mpi.OpMax)
		if err != nil {
			return err
		}
		if rank == 0 {
			writeTime = time.Duration(mx)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	// ---- Read phase: a fresh job (possibly a different rank count, the
	// restart scenario) reads under the configured pattern ----
	readRanks := p.ReadRanks
	if readRanks == 0 {
		readRanks = p.Ranks
	}
	n.Machine.SetConcurrency(readRanks)
	var readTime time.Duration
	_, err = mpi.Run(n.Machine, readRanks, func(c *mpi.Comm) error {
		rank := c.Rank()
		t1 := c.Clock().Now()
		r, err := lib.OpenRead(c, n, "/exp.data")
		if err != nil {
			return err
		}
		var verifyTime time.Duration
		var dst []byte
		for vi, v := range spec.Vars {
			offs, counts, err := spec.ReadBlock(p.Pattern, readRanks, rank)
			if err != nil {
				return err
			}
			need := uint64(8)
			for _, cn := range counts {
				need *= cn
			}
			if uint64(len(dst)) < need {
				dst = make([]byte, need)
			}
			if err := r.Read(v.Name, offs, counts, dst[:need]); err != nil {
				return err
			}
			if p.Verify {
				v0 := c.Clock().Now()
				if err := spec.VerifyBlock(c, n.Machine, vi, offs, counts, dst[:need], readRanks); err != nil {
					return err
				}
				verifyTime += c.Clock().Now() - v0
			}
		}
		if err := r.Close(); err != nil {
			return err
		}
		if p.Metrics && rank == 0 {
			if im, ok := r.(pio.Instrumented); ok {
				readSnap = im.Metrics()
			}
		}
		dt := c.Clock().Now() - t1 - verifyTime
		mx, err := c.AllreduceU64(uint64(dt), mpi.OpMax)
		if err != nil {
			return err
		}
		if rank == 0 {
			readTime = time.Duration(mx)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Library:      lib.Name(),
		Ranks:        p.Ranks,
		Bytes:        spec.TotalBytes(),
		Write:        writeTime,
		Read:         readTime,
		WriteMetrics: writeSnap,
		ReadMetrics:  readSnap,
	}, nil
}

func f64bytes(v []float64) []byte {
	return bytesview.Bytes(v)
}

// Sweep runs every library over every rank count and returns all results in
// (library, ranks) order.
func Sweep(libs []pio.Library, rankCounts []int, base Params) ([]Result, error) {
	var out []Result
	for _, lib := range libs {
		for _, ranks := range rankCounts {
			p := base
			p.Ranks = ranks
			res, err := Run(lib, p)
			if err != nil {
				return out, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// Table renders results as one figure-style table: libraries as columns,
// rank counts as rows, one phase per call ("write" or "read").
func Table(w io.Writer, results []Result, phase string) {
	libs := make([]string, 0)
	seenLib := map[string]bool{}
	ranksSet := map[int]bool{}
	cell := map[string]time.Duration{}
	for _, r := range results {
		if !seenLib[r.Library] {
			seenLib[r.Library] = true
			libs = append(libs, r.Library)
		}
		ranksSet[r.Ranks] = true
		d := r.Write
		if phase == "read" {
			d = r.Read
		}
		cell[fmt.Sprintf("%s/%d", r.Library, r.Ranks)] = d
	}
	ranks := make([]int, 0, len(ranksSet))
	for k := range ranksSet {
		ranks = append(ranks, k)
	}
	sort.Ints(ranks)

	fmt.Fprintf(w, "%-8s", "#PROCS")
	for _, lib := range libs {
		fmt.Fprintf(w, " %12s", lib)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 8+13*len(libs)))
	for _, n := range ranks {
		fmt.Fprintf(w, "%-8d", n)
		for _, lib := range libs {
			d, ok := cell[fmt.Sprintf("%s/%d", lib, n)]
			if !ok {
				fmt.Fprintf(w, " %12s", "-")
				continue
			}
			fmt.Fprintf(w, " %11.3fs", d.Seconds())
		}
		fmt.Fprintln(w)
	}
}

// CSV renders results as comma-separated rows for plotting.
func CSV(w io.Writer, results []Result) {
	fmt.Fprintln(w, "library,ranks,bytes,write_s,read_s")
	for _, r := range results {
		fmt.Fprintf(w, "%s,%d,%d,%.6f,%.6f\n",
			r.Library, r.Ranks, r.Bytes, r.Write.Seconds(), r.Read.Seconds())
	}
}

// Speedup returns a's time divided by b's time for the phase (how much
// faster b is than a).
func Speedup(a, b Result, phase string) float64 {
	if phase == "read" {
		if b.Read == 0 {
			return 0
		}
		return float64(a.Read) / float64(b.Read)
	}
	if b.Write == 0 {
		return 0
	}
	return float64(a.Write) / float64(b.Write)
}
