package harness

import (
	"bytes"
	"strings"
	"testing"

	"pmemcpy/internal/adios"
	"pmemcpy/internal/core"
	"pmemcpy/internal/netcdf"
	"pmemcpy/internal/pio"
	"pmemcpy/internal/pnetcdf"
	"pmemcpy/internal/sim"
	"pmemcpy/internal/workload"
)

// smallParams returns a fast, verified experiment configuration.
func smallParams(ranks int) Params {
	const scale = 2048.0
	return Params{
		TotalBytes: int64(40e9 / scale),
		Vars:       4,
		Ranks:      ranks,
		Config:     sim.DefaultConfig().Scale(scale),
		Verify:     true,
		Runs:       1,
	}
}

func TestRunAllLibrariesVerified(t *testing.T) {
	libs := []pio.Library{
		adios.Library{},
		netcdf.Library{},
		pnetcdf.Library{},
		core.Library{},
		core.Library{MapSync: true},
	}
	for _, lib := range libs {
		res, err := Run(lib, smallParams(8))
		if err != nil {
			t.Fatalf("%s: %v", lib.Name(), err)
		}
		if res.Write <= 0 || res.Read <= 0 {
			t.Fatalf("%s: degenerate result %+v", lib.Name(), res)
		}
		if res.Bytes <= 0 {
			t.Fatalf("%s: no bytes recorded", lib.Name())
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	// Data-path costs are fully deterministic (preset pool concurrency);
	// only metadata pointer-chase counts depend on goroutine interleaving
	// (free-list order), which contributes well under 0.1% of phase time.
	a, err := Run(core.Library{}, smallParams(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(core.Library{}, smallParams(8))
	if err != nil {
		t.Fatal(err)
	}
	within := func(x, y float64) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d <= 0.001*x
	}
	if !within(a.Write.Seconds(), b.Write.Seconds()) || !within(a.Read.Seconds(), b.Read.Seconds()) {
		t.Fatalf("nondeterministic beyond tolerance: %+v vs %+v", a, b)
	}
}

// TestPaperShapeHolds checks the paper's headline claims at 24 procs on a
// reduced workload: pMEMCPY-A beats ADIOS on writes, beats NetCDF by >= 2x
// on writes and >= 3.5x on reads, beats ADIOS by >= 1.5x on reads, and
// PMCPY-B loses the advantage.
func TestPaperShapeHolds(t *testing.T) {
	p := smallParams(24)
	run := func(lib pio.Library) Result {
		r, err := Run(lib, p)
		if err != nil {
			t.Fatalf("%s: %v", lib.Name(), err)
		}
		return r
	}
	a := run(core.Library{})
	b := run(core.Library{MapSync: true})
	ad := run(adios.Library{})
	nc := run(netcdf.Library{})

	if !(a.Write < ad.Write) {
		t.Errorf("PMCPY-A write %v not faster than ADIOS %v", a.Write, ad.Write)
	}
	if s := Speedup(nc, a, "write"); s < 2.0 {
		t.Errorf("write speedup over NetCDF = %.2fx, want >= 2.0x", s)
	}
	if s := Speedup(ad, a, "read"); s < 1.5 {
		t.Errorf("read speedup over ADIOS = %.2fx, want >= 1.5x", s)
	}
	if s := Speedup(nc, a, "read"); s < 3.5 {
		t.Errorf("read speedup over NetCDF = %.2fx, want >= 3.5x", s)
	}
	// MAP_SYNC erases the advantage: B is slower than A on both phases and
	// lands at or above ADIOS-class read times.
	if !(b.Write > a.Write && b.Read > a.Read) {
		t.Errorf("PMCPY-B (%v/%v) not slower than PMCPY-A (%v/%v)",
			b.Write, b.Read, a.Write, a.Read)
	}
	if float64(b.Read) < 0.8*float64(ad.Read) {
		t.Errorf("PMCPY-B read %v much faster than ADIOS %v; paper says no better", b.Read, ad.Read)
	}
}

func TestSweepAndRendering(t *testing.T) {
	p := smallParams(0)
	results, err := Sweep([]pio.Library{core.Library{}, adios.Library{}}, []int{8, 16}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	var tbl bytes.Buffer
	Table(&tbl, results, "write")
	out := tbl.String()
	for _, want := range []string{"#PROCS", "PMCPY-A", "ADIOS", "8", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	CSV(&csv, results)
	if lines := strings.Count(csv.String(), "\n"); lines != 5 {
		t.Errorf("CSV lines = %d, want 5 (header + 4 rows)", lines)
	}
	if !strings.Contains(csv.String(), "library,ranks,bytes,write_s,read_s") {
		t.Error("CSV header missing")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Library: "PMCPY-A", Ranks: 24, Bytes: 40_000_000_000}
	s := r.String()
	if !strings.Contains(s, "PMCPY-A") || !strings.Contains(s, "n=24") {
		t.Errorf("String() = %q", s)
	}
}

func TestReadPatternRestartVerified(t *testing.T) {
	// Write with 24 ranks, restart-read with 8: reads cross writer blocks.
	p := smallParams(24)
	p.Pattern = workload.PatternRestart
	p.ReadRanks = 8
	for _, lib := range []pio.Library{core.Library{}, adios.Library{}, netcdf.Library{}} {
		res, err := Run(lib, p)
		if err != nil {
			t.Fatalf("%s: %v", lib.Name(), err)
		}
		if res.Read <= 0 {
			t.Fatalf("%s: no read time", lib.Name())
		}
	}
}

func TestReadPatternPlaneVerified(t *testing.T) {
	p := smallParams(8)
	p.Pattern = workload.PatternPlane
	for _, lib := range []pio.Library{core.Library{}, adios.Library{}, netcdf.Library{}} {
		res, err := Run(lib, p)
		if err != nil {
			t.Fatalf("%s: %v", lib.Name(), err)
		}
		if res.Read <= 0 {
			t.Fatalf("%s: no read time", lib.Name())
		}
	}
}

func TestPlanePatternFavorsContiguousLayouts(t *testing.T) {
	// The "Six degrees" result: log-structured formats (ADIOS) pay for plane
	// reads because whole blocks must be fetched to extract thin slices,
	// while pMEMCPY's byte-addressable mapped blocks only move the
	// intersections. Check ADIOS's plane-read penalty relative to its own
	// symmetric read exceeds pMEMCPY's.
	base := smallParams(8)
	base.Verify = false
	plane := base
	plane.Pattern = workload.PatternPlane

	ratio := func(lib pio.Library) float64 {
		sym, err := Run(lib, base)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := Run(lib, plane)
		if err != nil {
			t.Fatal(err)
		}
		// Normalize by bytes actually read: symmetric reads the whole var,
		// planes read 1/gdim0 of it; compare cost per byte via the ratio of
		// phase times scaled by volume is overkill — the penalty ratio of
		// plane time relative to the data volume it returns tells the story.
		return pl.Read.Seconds() / sym.Read.Seconds()
	}
	adiosRatio := ratio(adios.Library{})
	coreRatio := ratio(core.Library{})
	if adiosRatio <= coreRatio {
		t.Fatalf("plane/symmetric ratio: ADIOS %.3f <= PMCPY %.3f; log format should pay more",
			adiosRatio, coreRatio)
	}
}
