module pmemcpy

go 1.24
