package pmemcpy

import (
	"fmt"

	"pmemcpy/internal/bytesview"
	"pmemcpy/internal/core"
)

// Zero-copy read views: the v2 read path that finishes the paper's
// copy-elimination story. LoadSub copies block bytes out of PMEM into a
// caller-owned slice; LoadView instead leases a read-only view directly over
// the stored bytes — for a request served by one stored block under an
// identity codec ("raw"), the data never moves at all. The view stays valid
// until Close: deletes, compactions, and overwrites that would free the
// underlying blocks defer those frees until the view's lease epoch drains
// (DESIGN.md §14). Requests that cannot alias safely — gathers spanning
// blocks, non-identity codecs, checksum-sampled loads — transparently fall
// back to a private copy, so LoadView is always correct and at worst as
// expensive as LoadSub.

// View is a leased, read-only view of one block of array id, returned by
// LoadView and Array.View. Data returns the elements; ZeroCopy reports
// whether they alias stored PMEM bytes directly. Views must be Closed when
// done — an open view pins deferred block frees — and fail fast with
// ErrStaleView after Close or after the handle's Munmap. A View must not be
// copied by value and is not safe for concurrent use by multiple goroutines.
type View[T Scalar] struct {
	bv   *core.BlockView
	data []T
}

// Data returns the view's elements. The slice aliases stored PMEM on
// zero-copy views — do not write through it, and do not retain it past
// Close. It fails with ErrStaleView once the view is closed or the handle
// has been unmapped.
func (v *View[T]) Data() ([]T, error) {
	// The staleness check lives on the underlying BlockView; the typed
	// reinterpretation was validated once at LoadView time.
	if _, err := v.bv.Bytes(); err != nil {
		return nil, err
	}
	return v.data, nil
}

// Len returns the view's element count (valid even after Close).
func (v *View[T]) Len() int { return len(v.data) }

// ZeroCopy reports whether the view aliases stored PMEM bytes directly
// (true) or holds a private copy made by the fallback planner (false).
func (v *View[T]) ZeroCopy() bool { return v.bv.ZeroCopy() }

// Close releases the view and, if it was the last lease pinning them, frees
// deferred blocks. Idempotent.
func (v *View[T]) Close() error { return v.bv.Close() }

// LoadView returns a leased, read-only view of the block (offs, counts) of
// array id — LoadSub without the copy whenever the request is served by one
// stored block under an identity codec. The view is valid until Close; see
// View for the aliasing contract. Requests that cannot alias safely fall
// back to a private copy transparently (check ZeroCopy when the distinction
// matters; the pmemcpy_view_zero_copy_total / pmemcpy_view_fallback_total
// counters report the ratio per handle).
func LoadView[T Scalar](p *PMEM, id string, offs, counts []uint64) (*View[T], error) {
	dt, _, err := p.LoadDims(id)
	if err != nil {
		return nil, err
	}
	if want := dtypeOf[T](); dt != want && dt.Size() != want.Size() {
		return nil, fmt.Errorf("pmemcpy: array %q holds %v, requested %v: %w",
			id, dt, want, ErrTypeMismatch)
	}
	bv, err := p.LoadBlockView(id, offs, counts)
	if err != nil {
		return nil, err
	}
	raw, err := bv.Bytes()
	if err != nil {
		bv.Close()
		return nil, err
	}
	data, ok := bytesview.TryOf[T](raw)
	if !ok {
		// Stored block bytes are 8-byte aligned by the allocator, so this is
		// only reachable for a zero-copy view at an element offset that
		// misaligns a wide T within the block. Copy out rather than fail: the
		// view degrades to fallback semantics.
		bv.Close()
		data = bytesview.OfCopy[T](append([]byte(nil), raw...))
		cp, err := copiedView(p, id, data)
		if err != nil {
			return nil, err
		}
		return cp, nil
	}
	return &View[T]{bv: bv, data: data}, nil
}

// copiedView wraps already-copied elements in a fallback view so misaligned
// zero-copy hits still return a working (non-leased) view.
func copiedView[T Scalar](p *PMEM, id string, data []T) (*View[T], error) {
	bv := p.NewFallbackView(id, bytesview.Bytes(data))
	return &View[T]{bv: bv, data: data}, nil
}

// View returns a leased, read-only view of the block (offs, counts) of this
// array — the typed-handle mirror of LoadView.
func (a Array[T]) View(offs, counts []uint64) (*View[T], error) {
	return LoadView[T](a.p, a.id, offs, counts)
}
