// Benchmarks regenerating the paper's evaluation artifacts. Each figure/
// table has one benchmark family (see DESIGN.md's per-experiment index).
//
// Wall-clock time of these benchmarks is meaningless — the evaluation runs
// on a virtual-time model of the paper's 24-core PMEM testbed — so every
// benchmark reports the modelled phase time as the custom metric
// "sim-sec/op" (plus the modelled workload size as "GB"). Run with:
//
//	go test -bench=. -benchmem
//
// and read the sim-sec columns exactly like the y-axes of Figures 6 and 7.
// cmd/pmembench prints the same data as tables with the paper's claims
// annotated.
package pmemcpy_test

import (
	"fmt"
	"testing"

	"pmemcpy/internal/adios"
	"pmemcpy/internal/core"
	"pmemcpy/internal/harness"
	"pmemcpy/internal/netcdf"
	"pmemcpy/internal/pio"
	"pmemcpy/internal/pnetcdf"
	"pmemcpy/internal/sim"
)

// benchScale keeps the physical footprint of one benchmark run around
// 40 MB while modelling the paper's full 40 GB workload.
const benchScale = 1024.0

func benchParams(ranks int) harness.Params {
	return harness.Params{
		TotalBytes: int64(40e9 / benchScale),
		Vars:       10,
		Ranks:      ranks,
		Config:     sim.DefaultConfig().Scale(benchScale),
		Runs:       1,
	}
}

// paperLibraries returns the five series of Figures 6 and 7.
func paperLibraries() []pio.Library {
	return []pio.Library{
		adios.Library{},
		netcdf.Library{},
		pnetcdf.Library{},
		core.Library{},
		core.Library{MapSync: true},
	}
}

// paperProcs is the x-axis of Figures 6 and 7.
var paperProcs = []int{8, 16, 24, 32, 48}

func reportPhases(b *testing.B, res harness.Result, phase string) {
	b.Helper()
	switch phase {
	case "write":
		b.ReportMetric(res.Write.Seconds(), "sim-sec/op")
	case "read":
		b.ReportMetric(res.Read.Seconds(), "sim-sec/op")
	}
	b.ReportMetric(float64(res.Bytes)*benchScale/1e9, "modelled-GB")
}

func benchFigure(b *testing.B, phase string) {
	for _, lib := range paperLibraries() {
		for _, procs := range paperProcs {
			b.Run(fmt.Sprintf("%s/procs=%d", lib.Name(), procs), func(b *testing.B) {
				var res harness.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = harness.Run(lib, benchParams(procs))
					if err != nil {
						b.Fatal(err)
					}
				}
				reportPhases(b, res, phase)
			})
		}
	}
}

// BenchmarkFig6Write regenerates Figure 6: writing the 40 GB 3-D domain
// (10 rectangles, doubles, equal split) for 8-48 processes across all five
// libraries. Expected shape: PMCPY-A fastest; ~15% over ADIOS and ~2.5x
// over NetCDF/pNetCDF at 24 procs; PMCPY-B between ADIOS and p/NetCDF;
// curves flatten at 24 physical cores.
func BenchmarkFig6Write(b *testing.B) {
	benchFigure(b, "write")
}

// BenchmarkFig7Read regenerates Figure 7: the symmetric read-back.
// Expected shape: PMCPY-A ~2x over ADIOS and ~5x over NetCDF/pNetCDF;
// PMCPY-B no better than ADIOS.
func BenchmarkFig7Read(b *testing.B) {
	benchFigure(b, "read")
}

// benchPair runs one (library, procs) cell for ablation benchmarks.
func benchCell(b *testing.B, lib pio.Library, procs int) harness.Result {
	b.Helper()
	var res harness.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.Run(lib, benchParams(procs))
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkAblationStaging is experiment E4: serializing directly into
// mapped PMEM versus staging in DRAM first (the design choice Section 3's
// "Data Transfer and Serialization" paragraph argues for).
func BenchmarkAblationStaging(b *testing.B) {
	for _, cfg := range []struct {
		name string
		lib  pio.Library
	}{
		{"direct", core.Library{}},
		{"staged", core.Library{Staged: true}},
	} {
		b.Run(cfg.name+"/procs=24", func(b *testing.B) {
			res := benchCell(b, cfg.lib, 24)
			reportPhases(b, res, "write")
		})
	}
}

// BenchmarkAblationLayout is experiment E5: the PMDK hashtable layout versus
// the hierarchical filesystem layout (Section 3, "Data Layout").
func BenchmarkAblationLayout(b *testing.B) {
	for _, cfg := range []struct {
		name string
		lib  pio.Library
	}{
		{"hashtable", core.Library{}},
		{"hierarchy", core.Library{Layout: core.LayoutHierarchy}},
	} {
		b.Run(cfg.name+"/procs=24", func(b *testing.B) {
			res := benchCell(b, cfg.lib, 24)
			reportPhases(b, res, "write")
		})
	}
}

// BenchmarkAblationMapSync is experiment E6: the MAP_SYNC latency penalty
// on writes and reads (PMCPY-A vs PMCPY-B at a fixed process count).
func BenchmarkAblationMapSync(b *testing.B) {
	for _, cfg := range []struct {
		name string
		lib  pio.Library
	}{
		{"off", core.Library{}},
		{"on", core.Library{MapSync: true}},
	} {
		for _, phase := range []string{"write", "read"} {
			b.Run(fmt.Sprintf("mapsync=%s/%s/procs=24", cfg.name, phase), func(b *testing.B) {
				res := benchCell(b, cfg.lib, 24)
				reportPhases(b, res, phase)
			})
		}
	}
}

// BenchmarkSerializers is experiment E7: BP4 (default, with min/max
// characterization) versus the Cap'n-Proto-style flat codec, the
// cereal-style compact codec, and serialization disabled (raw).
func BenchmarkSerializers(b *testing.B) {
	for _, codec := range []string{"bp4", "flat", "cbin", "raw"} {
		for _, phase := range []string{"write", "read"} {
			b.Run(fmt.Sprintf("%s/%s/procs=24", codec, phase), func(b *testing.B) {
				res := benchCell(b, core.Library{Codec: codec}, 24)
				reportPhases(b, res, phase)
			})
		}
	}
}

// BenchmarkAblationChunked compares NetCDF's contiguous layout against
// HDF5-style chunked storage, bare and with the shuffle+rle filter pipeline
// (the chunked-mode-with-filters design the paper describes in §2.1).
func BenchmarkAblationChunked(b *testing.B) {
	for _, cfg := range []struct {
		name string
		lib  pio.Library
	}{
		{"contiguous", netcdf.Library{}},
		{"chunked", netcdf.Library{Chunked: true}},
		{"chunked-shuffle-rle", netcdf.Library{Chunked: true, Filter: "shuffle+rle"}},
	} {
		for _, phase := range []string{"write", "read"} {
			b.Run(fmt.Sprintf("%s/%s/procs=24", cfg.name, phase), func(b *testing.B) {
				res := benchCell(b, cfg.lib, 24)
				reportPhases(b, res, phase)
			})
		}
	}
}

// BenchmarkParallelWrite is experiment E12: the sharded copy-engine sweep.
// The paper scales write throughput by adding processes; this sweep holds the
// process count fixed and adds per-rank copy workers instead, so the same
// device-bandwidth ceiling is approached from within a single rank.
func BenchmarkParallelWrite(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d/procs=8", par), func(b *testing.B) {
			p := benchParams(8)
			p.Parallelism = par
			var res harness.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = harness.Run(core.Library{}, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportPhases(b, res, "write")
		})
	}
}

// BenchmarkAblationFill is the NC_NOFILL ablation the paper mentions in its
// methodology ("we make sure to call nc_def_var_fill() with NC_NOFILL ...
// which causes significant overhead for write workloads").
func BenchmarkAblationFill(b *testing.B) {
	for _, cfg := range []struct {
		name string
		lib  pio.Library
	}{
		{"nofill", netcdf.Library{}},
		{"fill", netcdf.Library{Fill: true}},
	} {
		b.Run(cfg.name+"/procs=24", func(b *testing.B) {
			res := benchCell(b, cfg.lib, 24)
			reportPhases(b, res, "write")
		})
	}
}
