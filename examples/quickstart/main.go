// Quickstart: the paper's Figure 3 in Go. Four processes each write 100
// doubles to non-overlapping offsets of a shared 1-D array "A" in node-local
// PMEM, then read the whole array back, query its dimensions, and store a
// couple of scalars along the way. Compare with the 42-line HDF5 program in
// the paper's Figure 4 (or run cmd/apicmp for the token counts).
package main

import (
	"fmt"
	"log"

	"pmemcpy"
)

func main() {
	const nprocs = 4
	node := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 256<<20)

	times, err := pmemcpy.Run(node, nprocs, func(c *pmemcpy.Comm) error {
		// --- Figure 3: parallel write ---
		pmem, err := pmemcpy.Mmap(c, node, "/quickstart.pool")
		if err != nil {
			return err
		}
		count := uint64(100)
		off := count * uint64(c.Rank())
		dimsf := count * uint64(c.Size())

		data := make([]float64, count)
		for i := range data {
			data[i] = float64(off) + float64(i)
		}
		if err := pmemcpy.Alloc[float64](pmem, "A", dimsf); err != nil {
			return err
		}
		if err := pmemcpy.StoreSub(pmem, "A", data, []uint64{off}, []uint64{count}); err != nil {
			return err
		}
		// Scalars and strings use the same key-value interface.
		if c.Rank() == 0 {
			if err := pmemcpy.Store(pmem, "iteration", int64(7)); err != nil {
				return err
			}
			if err := pmemcpy.StoreString(pmem, "provenance", "quickstart example"); err != nil {
				return err
			}
		}
		if err := pmem.Munmap(); err != nil {
			return err
		}

		// --- Read back on every rank ---
		pmem2, err := pmemcpy.Mmap(c, node, "/quickstart.pool")
		if err != nil {
			return err
		}
		dims, err := pmemcpy.LoadDims(pmem2, "A") // the "#dims" companion key
		if err != nil {
			return err
		}
		whole, _, err := pmemcpy.LoadSlice[float64](pmem2, "A")
		if err != nil {
			return err
		}
		for i, v := range whole {
			if v != float64(i) {
				return fmt.Errorf("rank %d: A[%d] = %g, want %d", c.Rank(), i, v, i)
			}
		}
		if c.Rank() == 0 {
			iter, err := pmemcpy.Load[int64](pmem2, "iteration")
			if err != nil {
				return err
			}
			who, err := pmemcpy.LoadString(pmem2, "provenance")
			if err != nil {
				return err
			}
			fmt.Printf("A dims=%v, %d elements verified; iteration=%d, provenance=%q\n",
				dims, len(whole), iter, who)
		}
		return pmem2.Munmap()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done; slowest rank finished at virtual t=%v\n", maxOf(times))
}

func maxOf[T ~int64 | ~float64](v []T) T {
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx
}
