// Hierarchical layout: Section 3's alternative to the flat hashtable
// namespace. "Whenever a '/' is used in the id of the variable, a directory
// is created if it didn't already exist" — each variable becomes its own
// file on the PMEM's filesystem, which keeps datasets browsable with
// ordinary directory tools (the Exdir-style organization the paper cites the
// neuroscience community asking for, in contrast to HDF5's opaque single
// binary file).
//
// The example writes three timesteps of two fields, then walks the resulting
// tree and reads one field back from the middle timestep.
package main

import (
	"fmt"
	"log"
	"strings"

	"pmemcpy"
	"pmemcpy/internal/sim"
)

func main() {
	node := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 256<<20)

	const ranks = 2
	_, err := pmemcpy.Run(node, ranks, func(c *pmemcpy.Comm) error {
		pm, err := pmemcpy.Mmap(c, node, "/dataset", pmemcpy.WithLayout(pmemcpy.LayoutHierarchy))
		if err != nil {
			return err
		}
		per := uint64(128)
		gdim := per * ranks
		off := per * uint64(c.Rank())
		for ts := 0; ts < 3; ts++ {
			for _, field := range []string{"density", "pressure"} {
				id := fmt.Sprintf("run42/step%03d/%s", ts, field)
				if err := pmemcpy.Alloc[float64](pm, id, gdim); err != nil {
					return err
				}
				vals := make([]float64, per)
				for i := range vals {
					vals[i] = float64(ts*1000) + float64(off) + float64(i)
				}
				if err := pmemcpy.StoreSub(pm, id, vals, []uint64{off}, []uint64{per}); err != nil {
					return err
				}
			}
		}
		if c.Rank() == 0 {
			if err := pmemcpy.StoreString(pm, "run42/README", "hierarchical layout demo"); err != nil {
				return err
			}
		}
		return pm.Munmap()
	})
	if err != nil {
		log.Fatal(err)
	}

	// Walk the tree the layout created on the DAX filesystem.
	fmt.Println("dataset tree:")
	walk(node, "/dataset", 1)

	// Read one field back through the API.
	_, err = pmemcpy.Run(node, 1, func(c *pmemcpy.Comm) error {
		pm, err := pmemcpy.Mmap(c, node, "/dataset", pmemcpy.WithLayout(pmemcpy.LayoutHierarchy))
		if err != nil {
			return err
		}
		vals, dims, err := pmemcpy.LoadSlice[float64](pm, "run42/step001/density")
		if err != nil {
			return err
		}
		fmt.Printf("\nrun42/step001/density: dims=%v first=%g last=%g\n",
			dims, vals[0], vals[len(vals)-1])
		note, err := pmemcpy.LoadString(pm, "run42/README")
		if err != nil {
			return err
		}
		fmt.Printf("run42/README: %q\n", note)
		return pm.Munmap()
	})
	if err != nil {
		log.Fatal(err)
	}
}

func walk(n *pmemcpy.Node, dir string, depth int) {
	clk := new(sim.Clock)
	ents, err := n.FS.ReadDir(clk, dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		fmt.Printf("%s%s", strings.Repeat("  ", depth), e.Name)
		if e.IsDir {
			fmt.Println("/")
			walk(n, dir+"/"+e.Name, depth+1)
		} else {
			fmt.Printf(" (%d bytes)\n", e.Size)
		}
	}
}
