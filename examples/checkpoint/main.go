// Checkpoint/restart with a simulated power failure. An iterative solver
// checkpoints its state into PMEM after every iteration: each rank stores
// its state vector under an iteration-specific id, and once all ranks'
// stores are durable, rank 0 advances the "iteration" marker. The power is
// cut in the middle of iteration 5 — after the state stores but before the
// marker commit. On restart, pMEMCPY's PMDK transaction layer recovers the
// pool to a consistent state: the marker still names iteration 4, the
// iteration-4 checkpoint is bit-perfect, and the solver replays iteration 5
// and finishes. No torn checkpoint is ever observable.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pmemcpy"
)

const (
	ranks    = 4
	elems    = 4096 // per-rank state vector
	crashAt  = 5    // power fails during iteration 5's marker commit
	lastIter = 8
)

func stateKey(iter, rank int) string {
	return fmt.Sprintf("ckpt/iter%d/rank%d", iter, rank)
}

func main() {
	node := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 256<<20, pmemcpy.WithCrashTracking())

	// Phase 1: run until the power fails mid-iteration-5.
	_, err := pmemcpy.Run(node, ranks, func(c *pmemcpy.Comm) error {
		pm, err := pmemcpy.Mmap(c, node, "/ckpt.pool")
		if err != nil {
			return err
		}
		state := initialState(c.Rank())
		for iter := 1; iter < crashAt; iter++ {
			step(state, iter)
			if err := checkpoint(pm, c, state, iter); err != nil {
				return err
			}
		}
		// Iteration 5: the state stores land, but the run is interrupted
		// before the marker advances.
		step(state, crashAt)
		if err := storeState(pm, c, state, crashAt); err != nil {
			return err
		}
		return c.Barrier() // ...and the lights go out here
	})
	if err != nil {
		log.Fatal(err)
	}
	pmemcpy.SimulateCrash(node, pmemcpy.CrashRandom, rand.New(rand.NewSource(42)))
	fmt.Printf("power failure injected during iteration %d (marker not yet advanced)\n", crashAt)

	// Phase 2: restart, recover, resume.
	_, err = pmemcpy.Run(node, ranks, func(c *pmemcpy.Comm) error {
		pm, err := pmemcpy.Mmap(c, node, "/ckpt.pool") // runs pool recovery
		if err != nil {
			return err
		}
		resume, err := pmemcpy.Load[int64](pm, "iteration")
		if err != nil {
			return fmt.Errorf("no recoverable checkpoint: %w", err)
		}
		if resume != crashAt-1 {
			return fmt.Errorf("marker = %d, want last complete iteration %d", resume, crashAt-1)
		}
		state := make([]float64, elems)
		if err := pmemcpy.LoadSub(pm, stateKey(int(resume), c.Rank()), state,
			[]uint64{0}, []uint64{elems}); err != nil {
			return err
		}
		// The restored state must equal a clean re-computation up to the
		// marker's iteration.
		want := initialState(c.Rank())
		for iter := 1; iter <= int(resume); iter++ {
			step(want, iter)
		}
		for i := range state {
			if state[i] != want[i] {
				return fmt.Errorf("rank %d: restored state diverges at %d (%g != %g)",
					c.Rank(), i, state[i], want[i])
			}
		}
		if c.Rank() == 0 {
			fmt.Printf("recovered checkpoint of iteration %d; state verified, replaying %d\n",
				resume, resume+1)
		}
		for iter := int(resume) + 1; iter <= lastIter; iter++ {
			step(state, iter)
			if err := checkpoint(pm, c, state, iter); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			final, err := pmemcpy.Load[int64](pm, "iteration")
			if err != nil {
				return err
			}
			fmt.Printf("run complete at iteration %d\n", final)
		}
		return pm.Munmap()
	})
	if err != nil {
		log.Fatal(err)
	}
}

// storeState persists this rank's state vector for the given iteration.
func storeState(pm *pmemcpy.PMEM, c *pmemcpy.Comm, state []float64, iter int) error {
	key := stateKey(iter, c.Rank())
	if err := pmemcpy.Alloc[float64](pm, key, elems); err != nil {
		return err
	}
	return pmemcpy.StoreSub(pm, key, state, []uint64{0}, []uint64{elems})
}

// checkpoint stores every rank's state and then advances the marker. The
// marker moves only after a barrier, so a recovered marker value k implies
// iteration k's checkpoint is complete and durable on every rank.
func checkpoint(pm *pmemcpy.PMEM, c *pmemcpy.Comm, state []float64, iter int) error {
	if err := storeState(pm, c, state, iter); err != nil {
		return err
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	if c.Rank() == 0 {
		if err := pmemcpy.Store(pm, "iteration", int64(iter)); err != nil {
			return err
		}
	}
	return c.Barrier()
}

func initialState(rank int) []float64 {
	s := make([]float64, elems)
	for i := range s {
		s[i] = float64(rank*elems + i)
	}
	return s
}

// step advances the solver state one iteration (a toy stencil update).
func step(s []float64, iter int) {
	for i := range s {
		s[i] = s[i]*1.0001 + float64(iter)
	}
}
