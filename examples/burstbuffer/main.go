// Burst-buffer tiering: the machine architecture of the paper's Figure 1 in
// action. Compute ranks absorb an output burst into node-local PMEM at PMEM
// speed; a flusher then drains the data asynchronously to the shared burst
// buffer / parallel filesystem "in the same format as it was produced",
// evicting it from PMEM to make room for the next burst; finally the data is
// staged back in and verified. The virtual times show why the PMEM tier is
// worth having: the burst lands an order of magnitude faster than the PFS
// could accept it.
package main

import (
	"fmt"
	"log"
	"time"

	"pmemcpy"
)

const (
	ranks = 8
	per   = 64 << 10 // float64 elements per rank
)

func main() {
	node := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 512<<20)
	pfs := pmemcpy.NewPFS(0, 0) // default: 2 GB/s uplink, 500 µs latency

	// --- Burst phase: ranks dump state into PMEM at device speed ---
	var burstT time.Duration
	_, err := pmemcpy.Run(node, ranks, func(c *pmemcpy.Comm) error {
		pm, err := pmemcpy.Mmap(c, node, "/tier.pool")
		if err != nil {
			return err
		}
		t0 := c.Clock().Now()
		gdim := uint64(per * ranks)
		off := uint64(per * c.Rank())
		vals := make([]float64, per)
		for i := range vals {
			vals[i] = float64(off) + float64(i)
		}
		if err := pmemcpy.Alloc[float64](pm, "field", gdim); err != nil {
			return err
		}
		if err := pmemcpy.StoreSub(pm, "field", vals, []uint64{off}, []uint64{per}); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			burstT = c.Clock().Now() - t0
		}
		return pm.Munmap()
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Drain phase: the flusher agent ships PMEM contents to the PFS and
	// evicts them, freeing the buffer for the next burst ---
	var drainT time.Duration
	var moved int64
	_, err = pmemcpy.Run(node, 1, func(c *pmemcpy.Comm) error {
		pm, err := pmemcpy.Mmap(c, node, "/tier.pool")
		if err != nil {
			return err
		}
		fl := pmemcpy.NewFlusher(pfs)
		fl.Evict = true
		t0 := c.Clock().Now()
		if moved, err = fl.DrainStore(pm, "bb/step0/"); err != nil {
			return err
		}
		drainT = c.Clock().Now() - t0
		keys, err := pm.Keys()
		if err != nil {
			return err
		}
		if len(keys) != 0 {
			return fmt.Errorf("PMEM not drained: %v", keys)
		}
		return pm.Munmap()
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Restage phase: pull the data back from the PFS and verify ---
	_, err = pmemcpy.Run(node, 1, func(c *pmemcpy.Comm) error {
		pm, err := pmemcpy.Mmap(c, node, "/tier.pool")
		if err != nil {
			return err
		}
		if _, err := pmemcpy.Restore(pm, pfs, "bb/step0/"); err != nil {
			return err
		}
		vals, dims, err := pmemcpy.LoadSlice[float64](pm, "field")
		if err != nil {
			return err
		}
		for i, v := range vals {
			if v != float64(i) {
				return fmt.Errorf("field[%d] = %g after restage", i, v)
			}
		}
		fmt.Printf("restaged and verified field dims=%v (%d elements)\n", dims, len(vals))
		return pm.Munmap()
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("burst into PMEM: %v (%d ranks)\n", burstT, ranks)
	fmt.Printf("drain to PFS:    %v (%.1f MB moved, evicted from PMEM)\n",
		drainT, float64(moved)/1e6)
	fmt.Printf("PMEM absorbed the burst %.0fx faster than the PFS drain\n",
		float64(drainT)/float64(burstT))
}
