// S3D-style stencil I/O: the paper's evaluation workload as an application.
// A 3-D domain decomposition across 8 ranks produces 10 rectangular fields
// ("10 3-D rectangles"); each rank stores its block of every field directly
// into PMEM, then the symmetric read-back restores and verifies them —
// exactly the write-only and read-only phases measured in Figures 6 and 7.
//
// The example also prints the virtual time of each phase, so it doubles as a
// miniature of the benchmark harness.
package main

import (
	"fmt"
	"log"
	"time"

	"pmemcpy"
)

const (
	ranks  = 8
	fields = 10
	// Per-rank block extents (elements): a 32^3 cube of float64 per field.
	bx, by, bz = 32, 32, 32
)

func main() {
	node := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 512<<20)

	// 2 x 2 x 2 processor grid.
	grid := []uint64{2, 2, 2}
	gdims := []uint64{grid[0] * bx, grid[1] * by, grid[2] * bz}

	var writeT, readT time.Duration
	_, err := pmemcpy.Run(node, ranks, func(c *pmemcpy.Comm) error {
		r := uint64(c.Rank())
		offs := []uint64{(r / 4) * bx, ((r / 2) % 2) * by, (r % 2) * bz}
		counts := []uint64{bx, by, bz}
		block := make([]float64, bx*by*bz)

		// ---- Write phase ----
		t0 := c.Clock().Now()
		pmem, err := pmemcpy.Mmap(c, node, "/s3d.pool")
		if err != nil {
			return err
		}
		for f := 0; f < fields; f++ {
			name := fmt.Sprintf("rect%d", f)
			if err := pmemcpy.Alloc[float64](pmem, name, gdims...); err != nil {
				return err
			}
			fill(block, f, offs, counts, gdims)
			if err := pmemcpy.StoreSub(pmem, name, block, offs, counts); err != nil {
				return err
			}
		}
		if err := pmem.Munmap(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			writeT = c.Clock().Now() - t0
		}

		// ---- Read phase (symmetric) ----
		t1 := c.Clock().Now()
		pmem2, err := pmemcpy.Mmap(c, node, "/s3d.pool")
		if err != nil {
			return err
		}
		got := make([]float64, bx*by*bz)
		want := make([]float64, bx*by*bz)
		for f := 0; f < fields; f++ {
			name := fmt.Sprintf("rect%d", f)
			if err := pmemcpy.LoadSub(pmem2, name, got, offs, counts); err != nil {
				return err
			}
			fill(want, f, offs, counts, gdims)
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("rank %d %s elem %d: %g != %g", c.Rank(), name, i, got[i], want[i])
				}
			}
		}
		if err := pmem2.Munmap(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			readT = c.Clock().Now() - t1
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	total := int64(ranks) * fields * bx * by * bz * 8
	fmt.Printf("wrote+verified %d fields, %.1f MB total across %d ranks\n",
		fields, float64(total)/1e6, ranks)
	fmt.Printf("virtual write phase: %v, read phase: %v\n", writeT, readT)
}

// fill generates the deterministic field values for a block: every element
// encodes its field index and global coordinate.
func fill(block []float64, field int, offs, counts, gdims []uint64) {
	sy := gdims[2]
	sx := gdims[1] * gdims[2]
	i := 0
	for x := uint64(0); x < counts[0]; x++ {
		for y := uint64(0); y < counts[1]; y++ {
			for z := uint64(0); z < counts[2]; z++ {
				g := (offs[0]+x)*sx + (offs[1]+y)*sy + (offs[2] + z)
				block[i] = float64(field+1)*1e9 + float64(g)
				i++
			}
		}
	}
}
