package pmemcpy_test

import (
	"errors"
	"fmt"
	"testing"

	"pmemcpy"
)

// TestArrayRoundTrip exercises the typed-handle surface end to end against
// the free functions it wraps.
func TestArrayRoundTrip(t *testing.T) {
	single(t, func(p *pmemcpy.PMEM) error {
		a, err := pmemcpy.CreateArray[float64](p, "T", 8, 8)
		if err != nil {
			return err
		}
		if a.ID() != "T" {
			return fmt.Errorf("ID = %q", a.ID())
		}
		data := make([]float64, 64)
		for i := range data {
			data[i] = float64(i)
		}
		if err := a.Store(data, []uint64{0, 0}, []uint64{8, 8}); err != nil {
			return err
		}
		dims, err := a.Dims()
		if err != nil || len(dims) != 2 || dims[0] != 8 || dims[1] != 8 {
			return fmt.Errorf("Dims = %v, %v", dims, err)
		}
		// A 2x2 corner through the typed handle.
		got := make([]float64, 4)
		if err := a.Load(got, []uint64{6, 6}, []uint64{2, 2}); err != nil {
			return err
		}
		want := []float64{54, 55, 62, 63}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("Load corner = %v, want %v", got, want)
			}
		}
		mn, mx, err := a.MinMax()
		if err != nil || mn != 0 || mx != 63 {
			return fmt.Errorf("MinMax = %v, %v, %v", mn, mx, err)
		}
		all, dims2, err := a.All()
		if err != nil || len(all) != 64 || dims2[0] != 8 {
			return fmt.Errorf("All: len=%d dims=%v err=%v", len(all), dims2, err)
		}
		// The same data is visible through the free functions — Array is a
		// binding, not a separate namespace.
		free := make([]float64, 64)
		if err := pmemcpy.LoadSub(p, "T", free, []uint64{0, 0}, []uint64{8, 8}); err != nil {
			return err
		}
		if free[63] != 63 {
			return fmt.Errorf("free-function read = %v", free[63])
		}
		return nil
	})
}

// TestOpenArraySentinels pins OpenArray's error taxonomy.
func TestOpenArraySentinels(t *testing.T) {
	single(t, func(p *pmemcpy.PMEM) error {
		if _, err := pmemcpy.OpenArray[float64](p, "ghost"); !errors.Is(err, pmemcpy.ErrNotFound) {
			t.Errorf("OpenArray(missing): err = %v, want ErrNotFound", err)
		}
		if err := pmemcpy.Alloc[float64](p, "A", 16); err != nil {
			return err
		}
		if _, err := pmemcpy.OpenArray[float64](p, "A"); err != nil {
			t.Errorf("OpenArray(declared): err = %v", err)
		}
		if _, err := pmemcpy.OpenArray[float32](p, "A"); !errors.Is(err, pmemcpy.ErrTypeMismatch) {
			t.Errorf("OpenArray(wrong type): err = %v, want ErrTypeMismatch", err)
		}
		return nil
	})
}

// TestSentinelsAcrossAPI asserts that errors surfaced by the historical free
// functions dispatch with errors.Is against the exported sentinels.
func TestSentinelsAcrossAPI(t *testing.T) {
	single(t, func(p *pmemcpy.PMEM) error {
		// Not found: scalars, dims, block reads.
		if _, err := pmemcpy.Load[int64](p, "ghost"); !errors.Is(err, pmemcpy.ErrNotFound) {
			t.Errorf("Load(missing): err = %v, want ErrNotFound", err)
		}
		if _, err := pmemcpy.LoadDims(p, "ghost"); !errors.Is(err, pmemcpy.ErrNotFound) {
			t.Errorf("LoadDims(missing): err = %v, want ErrNotFound", err)
		}

		// Type mismatch: a string is not an int64, a scalar is not a struct.
		if err := pmemcpy.StoreString(p, "s", "hello"); err != nil {
			return err
		}
		if _, err := pmemcpy.Load[int64](p, "s"); !errors.Is(err, pmemcpy.ErrTypeMismatch) {
			t.Errorf("Load(string id): err = %v, want ErrTypeMismatch", err)
		}
		if _, err := pmemcpy.LoadString(p, "s"); err != nil {
			return err
		}
		if err := pmemcpy.Store(p, "n", int64(1)); err != nil {
			return err
		}
		if _, err := pmemcpy.LoadString(p, "n"); !errors.Is(err, pmemcpy.ErrTypeMismatch) {
			t.Errorf("LoadString(scalar id): err = %v, want ErrTypeMismatch", err)
		}
		var out struct{ X int64 }
		if err := pmemcpy.LoadStruct(p, "n", &out); !errors.Is(err, pmemcpy.ErrTypeMismatch) {
			t.Errorf("LoadStruct(scalar id): err = %v, want ErrTypeMismatch", err)
		}

		// Out of bounds: selections past the declared extent.
		if err := pmemcpy.StoreSlice(p, "arr", []float64{1, 2, 3, 4}, 4); err != nil {
			return err
		}
		dst := make([]float64, 4)
		if err := pmemcpy.LoadSub(p, "arr", dst, []uint64{2}, []uint64{3}); !errors.Is(err, pmemcpy.ErrOutOfBounds) {
			t.Errorf("LoadSub(past extent): err = %v, want ErrOutOfBounds", err)
		}
		if err := pmemcpy.StoreSub(p, "arr", dst, []uint64{3}, []uint64{2}); !errors.Is(err, pmemcpy.ErrOutOfBounds) {
			t.Errorf("StoreSub(past extent): err = %v, want ErrOutOfBounds", err)
		}
		return nil
	})
}

// TestMmapFunctionalOptions checks the three Mmap calling conventions
// compile and agree: no options, the historical *Options (including nil),
// and functional options.
func TestMmapFunctionalOptions(t *testing.T) {
	n := newNode()
	_, err := pmemcpy.Run(n, 1, func(c *pmemcpy.Comm) error {
		// Functional options. Pool sizes are pinned so four pools fit the
		// test device.
		p, err := pmemcpy.Mmap(c, n, "/fo.pool", pmemcpy.WithPoolSize(8<<20),
			pmemcpy.WithCodec("raw"), pmemcpy.WithReadParallelism(4))
		if err != nil {
			return err
		}
		if p.CodecName() != "raw" {
			return fmt.Errorf("CodecName = %q, want raw", p.CodecName())
		}
		if err := p.Munmap(); err != nil {
			return err
		}
		// Untouched fields keep their defaults.
		p, err = pmemcpy.Mmap(c, n, "/fo2.pool", pmemcpy.WithPoolSize(8<<20))
		if err != nil {
			return err
		}
		if p.CodecName() != "bp4" {
			return fmt.Errorf("default CodecName = %q, want bp4", p.CodecName())
		}
		if err := p.Munmap(); err != nil {
			return err
		}
		// Historical surface: a nil *Options means defaults; a struct and a
		// trailing functional option compose, options applying in order.
		p, err = pmemcpy.Mmap(c, n, "/fo3.pool", (*pmemcpy.Options)(nil),
			pmemcpy.WithPoolSize(8<<20))
		if err != nil {
			return err
		}
		if err := p.Munmap(); err != nil {
			return err
		}
		p, err = pmemcpy.Mmap(c, n, "/fo4.pool",
			&pmemcpy.Options{Codec: "flat", PoolSize: 8 << 20}, pmemcpy.WithParallelism(2))
		if err != nil {
			return err
		}
		if p.CodecName() != "flat" {
			return fmt.Errorf("composed CodecName = %q, want flat", p.CodecName())
		}
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
}
