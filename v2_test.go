package pmemcpy_test

import (
	"errors"
	"fmt"
	"testing"

	"pmemcpy"
)

// TestArrayRoundTrip exercises the typed-handle surface end to end against
// the free functions it wraps.
func TestArrayRoundTrip(t *testing.T) {
	single(t, func(p *pmemcpy.PMEM) error {
		a, err := pmemcpy.CreateArray[float64](p, "T", 8, 8)
		if err != nil {
			return err
		}
		if a.ID() != "T" {
			return fmt.Errorf("ID = %q", a.ID())
		}
		data := make([]float64, 64)
		for i := range data {
			data[i] = float64(i)
		}
		if err := a.Store(data, []uint64{0, 0}, []uint64{8, 8}); err != nil {
			return err
		}
		dims, err := a.Dims()
		if err != nil || len(dims) != 2 || dims[0] != 8 || dims[1] != 8 {
			return fmt.Errorf("Dims = %v, %v", dims, err)
		}
		// A 2x2 corner through the typed handle.
		got := make([]float64, 4)
		if err := a.Load(got, []uint64{6, 6}, []uint64{2, 2}); err != nil {
			return err
		}
		want := []float64{54, 55, 62, 63}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("Load corner = %v, want %v", got, want)
			}
		}
		mn, mx, err := a.MinMax()
		if err != nil || mn != 0 || mx != 63 {
			return fmt.Errorf("MinMax = %v, %v, %v", mn, mx, err)
		}
		all, dims2, err := a.All()
		if err != nil || len(all) != 64 || dims2[0] != 8 {
			return fmt.Errorf("All: len=%d dims=%v err=%v", len(all), dims2, err)
		}
		// The same data is visible through the free functions — Array is a
		// binding, not a separate namespace.
		free := make([]float64, 64)
		if err := pmemcpy.LoadSub(p, "T", free, []uint64{0, 0}, []uint64{8, 8}); err != nil {
			return err
		}
		if free[63] != 63 {
			return fmt.Errorf("free-function read = %v", free[63])
		}
		return nil
	})
}

// TestOpenArraySentinels pins OpenArray's error taxonomy.
func TestOpenArraySentinels(t *testing.T) {
	single(t, func(p *pmemcpy.PMEM) error {
		if _, err := pmemcpy.OpenArray[float64](p, "ghost"); !errors.Is(err, pmemcpy.ErrNotFound) {
			t.Errorf("OpenArray(missing): err = %v, want ErrNotFound", err)
		}
		if err := pmemcpy.Alloc[float64](p, "A", 16); err != nil {
			return err
		}
		if _, err := pmemcpy.OpenArray[float64](p, "A"); err != nil {
			t.Errorf("OpenArray(declared): err = %v", err)
		}
		if _, err := pmemcpy.OpenArray[float32](p, "A"); !errors.Is(err, pmemcpy.ErrTypeMismatch) {
			t.Errorf("OpenArray(wrong type): err = %v, want ErrTypeMismatch", err)
		}
		return nil
	})
}

// TestSentinelsAcrossAPI asserts that errors surfaced by the historical free
// functions dispatch with errors.Is against the exported sentinels.
func TestSentinelsAcrossAPI(t *testing.T) {
	single(t, func(p *pmemcpy.PMEM) error {
		// Not found: scalars, dims, block reads.
		if _, err := pmemcpy.Load[int64](p, "ghost"); !errors.Is(err, pmemcpy.ErrNotFound) {
			t.Errorf("Load(missing): err = %v, want ErrNotFound", err)
		}
		if _, err := pmemcpy.LoadDims(p, "ghost"); !errors.Is(err, pmemcpy.ErrNotFound) {
			t.Errorf("LoadDims(missing): err = %v, want ErrNotFound", err)
		}

		// Type mismatch: a string is not an int64, a scalar is not a struct.
		if err := pmemcpy.StoreString(p, "s", "hello"); err != nil {
			return err
		}
		if _, err := pmemcpy.Load[int64](p, "s"); !errors.Is(err, pmemcpy.ErrTypeMismatch) {
			t.Errorf("Load(string id): err = %v, want ErrTypeMismatch", err)
		}
		if _, err := pmemcpy.LoadString(p, "s"); err != nil {
			return err
		}
		if err := pmemcpy.Store(p, "n", int64(1)); err != nil {
			return err
		}
		if _, err := pmemcpy.LoadString(p, "n"); !errors.Is(err, pmemcpy.ErrTypeMismatch) {
			t.Errorf("LoadString(scalar id): err = %v, want ErrTypeMismatch", err)
		}
		var out struct{ X int64 }
		if err := pmemcpy.LoadStruct(p, "n", &out); !errors.Is(err, pmemcpy.ErrTypeMismatch) {
			t.Errorf("LoadStruct(scalar id): err = %v, want ErrTypeMismatch", err)
		}

		// Out of bounds: selections past the declared extent.
		if err := pmemcpy.StoreSlice(p, "arr", []float64{1, 2, 3, 4}, 4); err != nil {
			return err
		}
		dst := make([]float64, 4)
		if err := pmemcpy.LoadSub(p, "arr", dst, []uint64{2}, []uint64{3}); !errors.Is(err, pmemcpy.ErrOutOfBounds) {
			t.Errorf("LoadSub(past extent): err = %v, want ErrOutOfBounds", err)
		}
		if err := pmemcpy.StoreSub(p, "arr", dst, []uint64{3}, []uint64{2}); !errors.Is(err, pmemcpy.ErrOutOfBounds) {
			t.Errorf("StoreSub(past extent): err = %v, want ErrOutOfBounds", err)
		}
		return nil
	})
}

// TestMmapFunctionalOptions checks the v2 Mmap calling conventions compile
// and agree: no options, and functional options composing in argument order.
// (The v1 pass-a-*Options shim was removed; functional options are the only
// configuration path.)
func TestMmapFunctionalOptions(t *testing.T) {
	n := newNode()
	_, err := pmemcpy.Run(n, 1, func(c *pmemcpy.Comm) error {
		// Functional options. Pool sizes are pinned so four pools fit the
		// test device.
		p, err := pmemcpy.Mmap(c, n, "/fo.pool", pmemcpy.WithPoolSize(8<<20),
			pmemcpy.WithCodec("raw"), pmemcpy.WithReadParallelism(4))
		if err != nil {
			return err
		}
		if p.CodecName() != "raw" {
			return fmt.Errorf("CodecName = %q, want raw", p.CodecName())
		}
		if err := p.Munmap(); err != nil {
			return err
		}
		// Untouched fields keep their defaults.
		p, err = pmemcpy.Mmap(c, n, "/fo2.pool", pmemcpy.WithPoolSize(8<<20))
		if err != nil {
			return err
		}
		if p.CodecName() != "bp4" {
			return fmt.Errorf("default CodecName = %q, want bp4", p.CodecName())
		}
		if err := p.Munmap(); err != nil {
			return err
		}
		// Options apply in argument order: later options override earlier.
		p, err = pmemcpy.Mmap(c, n, "/fo4.pool", pmemcpy.WithCodec("bp4"),
			pmemcpy.WithCodec("flat"), pmemcpy.WithPoolSize(8<<20), pmemcpy.WithParallelism(2))
		if err != nil {
			return err
		}
		if p.CodecName() != "flat" {
			return fmt.Errorf("composed CodecName = %q, want flat", p.CodecName())
		}
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestViewLifecycle exercises the public zero-copy view surface end to end:
// LoadView and Array.View alias stored bytes under an identity codec, survive
// a delete of the variable until closed, and fail fast once stale.
func TestViewLifecycle(t *testing.T) {
	n := newNode()
	_, err := pmemcpy.Run(n, 1, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/view.pool", pmemcpy.WithCodec("raw"))
		if err != nil {
			return err
		}
		a, err := pmemcpy.CreateArray[float64](p, "T", 256)
		if err != nil {
			return err
		}
		data := make([]float64, 256)
		for i := range data {
			data[i] = float64(i)
		}
		if err := a.Store(data, []uint64{0}, []uint64{256}); err != nil {
			return err
		}

		v, err := pmemcpy.LoadView[float64](p, "T", []uint64{0}, []uint64{256})
		if err != nil {
			return err
		}
		if !v.ZeroCopy() {
			return fmt.Errorf("LoadView under raw codec: ZeroCopy = false")
		}
		got, err := v.Data()
		if err != nil {
			return err
		}
		if len(got) != 256 || got[100] != 100 {
			return fmt.Errorf("view data = len %d, [100]=%v", len(got), got[100])
		}

		// Deleting the variable with the lease open defers the block free:
		// the view still reads the old data.
		if _, err := a.Delete(); err != nil {
			return err
		}
		if got, err = v.Data(); err != nil || got[100] != 100 {
			return fmt.Errorf("view after delete: data[100]=%v err=%v", got[100], err)
		}
		if err := v.Close(); err != nil {
			return err
		}
		if _, err := v.Data(); !errors.Is(err, pmemcpy.ErrStaleView) {
			return fmt.Errorf("Data after Close = %v, want ErrStaleView", err)
		}
		if v.Len() != 256 {
			return fmt.Errorf("Len after Close = %d, want 256 (metadata stays)", v.Len())
		}

		// The typed-handle mirror: a sub-range view through Array.View.
		b, err := pmemcpy.CreateArray[int32](p, "U", 64)
		if err != nil {
			return err
		}
		ints := make([]int32, 64)
		for i := range ints {
			ints[i] = int32(i * 3)
		}
		if err := b.Store(ints, []uint64{0}, []uint64{64}); err != nil {
			return err
		}
		sub, err := b.View([]uint64{16}, []uint64{8})
		if err != nil {
			return err
		}
		defer sub.Close()
		got32, err := sub.Data()
		if err != nil {
			return err
		}
		if sub.Len() != 8 || got32[0] != 48 || got32[7] != 69 {
			return fmt.Errorf("Array.View sub-range = %v", got32)
		}
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
}
