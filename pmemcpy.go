// Package pmemcpy is a Go reproduction of "pMEMCPY: a simple, lightweight,
// and portable I/O library for storing data in persistent memory"
// (Logan et al., IEEE CLUSTER 2021).
//
// pMEMCPY stores application data structures in node-local persistent memory
// through a key-value interface whose ergonomics approach a plain memcpy:
//
//	n := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 1<<30)
//	pmemcpy.Run(n, nprocs, func(c *pmemcpy.Comm) error {
//		pm, _ := pmemcpy.Mmap(c, n, "/data.pool")
//		count := []uint64{100}
//		off := []uint64{100 * uint64(c.Rank())}
//		pmemcpy.Alloc[float64](pm, "A", 100*uint64(c.Size()))
//		pmemcpy.StoreSub(pm, "A", data, off, count)
//		return pm.Munmap()
//	})
//
// which is the Go rendering of the paper's Figure 3 (16 lines of C++ against
// HDF5's 42).
//
// Under the hood the library maps a pool file from a DAX filesystem on an
// emulated PMEM device, manages it with a PMDK-style transactional allocator,
// keeps metadata in a persistent hashtable (ids gain a "#dims" companion key
// holding array dimensions), and serializes data directly into the mapped
// PMEM with a pluggable codec (BP4 by default) — no DRAM staging copy and no
// network communication, which is where its performance edge over ADIOS,
// NetCDF-4 and pNetCDF comes from. MAP_SYNC semantics can be enabled per
// handle for stronger crash guarantees at a significant latency cost.
//
// Everything runs against a deterministic virtual-time performance model of
// the paper's 24-core testbed (see DESIGN.md), so the repository's benchmarks
// regenerate the paper's figures on any host.
package pmemcpy

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"pmemcpy/internal/burstbuffer"
	"pmemcpy/internal/bytesview"
	"pmemcpy/internal/core"
	"pmemcpy/internal/fsck"
	"pmemcpy/internal/mpi"
	"pmemcpy/internal/node"
	"pmemcpy/internal/obs"
	"pmemcpy/internal/pmem"
	"pmemcpy/internal/serial"
	"pmemcpy/internal/sim"
)

// Config is the machine/device performance model configuration.
type Config = sim.Config

// DefaultConfig returns the paper's testbed model: 24 cores, PMEM with
// 300 ns/125 ns read/write latency and 30/8 GB/s read/write bandwidth.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Node is one emulated compute node with local PMEM and a DAX filesystem.
type Node = node.Node

// NodeOption configures NewNode.
type NodeOption func(*nodeOptions)

type nodeOptions struct {
	crashTracking bool
	pools         int
}

// WithCrashTracking enables power-failure simulation on the node's device:
// SimulateCrash can then roll back unpersisted stores, letting applications
// exercise checkpoint/restart and recovery paths.
func WithCrashTracking() NodeOption {
	return func(o *nodeOptions) { o.crashTracking = true }
}

// WithPMEMPools provisions the node with n independent PMEM devices of
// devSize bytes each (n <= 1 keeps the classic single device). Pair it with
// the WithPools Mmap option to shard one namespace across the devices. All
// devices share one fault domain: SimulateCrash power-cycles them together.
func WithPMEMPools(n int) NodeOption {
	return func(o *nodeOptions) { o.pools = n }
}

// NewNode builds a node whose PMEM device holds devSize bytes.
func NewNode(cfg Config, devSize int64, opts ...NodeOption) *Node {
	var o nodeOptions
	for _, op := range opts {
		op(&o)
	}
	var nopts []node.Option
	if o.crashTracking {
		nopts = append(nopts, node.WithDeviceOptions(pmem.WithCrashTracking()))
	}
	if o.pools > 1 {
		nopts = append(nopts, node.WithPMEMPools(o.pools))
	}
	return node.New(cfg, devSize, nopts...)
}

// CrashMode selects the adversary used by SimulateCrash.
type CrashMode = pmem.CrashMode

// Crash adversaries: lose every unpersisted cacheline, keep them all, or
// keep a random subset (arbitrary cache eviction order).
const (
	CrashLoseAll = pmem.CrashLoseAll
	CrashKeepAll = pmem.CrashKeepAll
	CrashRandom  = pmem.CrashRandom
)

// SimulateCrash power-cycles the node's PMEM devices (all of them, on a
// multi-pool node — they share one fault domain): unpersisted stores are
// rolled back according to mode (rng may be nil except for CrashRandom).
// The node must have been created with WithCrashTracking. Any PMEM handles
// open at crash time are dead; re-Mmap to run recovery.
func SimulateCrash(n *Node, mode CrashMode, rng *rand.Rand) {
	n.CrashAll(mode, rng)
}

// Comm is a communicator handle held by each rank of a parallel run.
type Comm = mpi.Comm

// Run executes fn on ranks parallel ranks (goroutines) against n's machine
// model and returns each rank's final virtual-clock time.
func Run(n *Node, ranks int, fn func(*Comm) error) ([]time.Duration, error) {
	n.Machine.SetConcurrency(ranks)
	return mpi.Run(n.Machine, ranks, fn)
}

// PMEM is the library handle (the paper's pmemcpy::PMEM object).
type PMEM = core.PMEM

// Options is the configuration carrier struct; the zero value gives the
// paper's evaluated configuration: BP4 serialization, hashtable layout,
// MAP_SYNC off. Since v2 it is no longer accepted by Mmap directly — pass the
// functional options (WithCodec, WithParallelism, WithMetrics, ...) instead,
// each of which sets one of its fields.
type Options = core.Options

// Layout selects the data layout.
type Layout = core.Layout

// Layout values.
const (
	// LayoutHashtable keeps everything in one pool file with a flat
	// persistent-hashtable namespace (the default).
	LayoutHashtable = core.LayoutHashtable
	// LayoutHierarchy maps "/"-separated ids onto directories and files.
	LayoutHierarchy = core.LayoutHierarchy
)

// DimsSuffix is the key suffix under which array dimensions are stored.
const DimsSuffix = core.DimsSuffix

// Error sentinels. Every error returned by the library that stems from one of
// these conditions wraps the sentinel, so callers dispatch with errors.Is
// instead of string matching:
//
//	if errors.Is(err, pmemcpy.ErrNotFound) { ... }
var (
	// ErrNotFound reports that an id (or its stored blocks) does not exist.
	ErrNotFound = core.ErrNotFound
	// ErrTypeMismatch reports that an id holds a different kind or element
	// type of value than the call requested, or that a redeclaration
	// (Alloc) conflicts with the id's existing dims.
	ErrTypeMismatch = core.ErrTypeMismatch
	// ErrOutOfBounds reports a block selection outside the array's declared
	// extent (or a rank mismatch against it).
	ErrOutOfBounds = core.ErrOutOfBounds
	// ErrMedia reports an uncorrectable (injected) media error that outlasted
	// the device's retry/backoff budget.
	ErrMedia = core.ErrMedia
	// ErrCorrupt reports that stored bytes failed their CRC32C check — a
	// verified read, the scrubber, or a deep check found the medium returned
	// different bytes than were persisted — or that the block being read was
	// quarantined by the scrubber. The error text identifies the id, block,
	// and pool offset.
	ErrCorrupt = core.ErrCorrupt
	// ErrStaleView reports an access through a zero-copy view whose lease is
	// no longer valid: the view was closed, or the handle group it was taken
	// on has been unmapped (Munmap invalidates every outstanding view).
	ErrStaleView = core.ErrStaleView
)

// MmapOption configures Mmap. The With* functional options below each adjust
// one configuration field; options apply in argument order. (The v1
// pass-a-*Options form was removed in v2.)
type MmapOption = core.MmapOption

// Functional Mmap options, re-exported from the core.
var (
	// WithCodec selects the serializer ("bp4", "flat", "cbin", "raw").
	WithCodec = core.WithCodec
	// WithLayout selects the data layout.
	WithLayout = core.WithLayout
	// WithMapSync enables MAP_SYNC semantics (the PMCPY-B configuration).
	WithMapSync = core.WithMapSync
	// WithPoolSize sets the pool file size for the hashtable layout.
	WithPoolSize = core.WithPoolSize
	// WithBuckets sets the metadata hashtable's bucket count.
	WithBuckets = core.WithBuckets
	// WithPools shards the namespace across n member pools (hashtable layout
	// only); the node must carry matching devices (WithPMEMPools).
	WithPools = core.WithPools
	// WithStagedSerialization enables the DRAM-staging ablation.
	WithStagedSerialization = core.WithStagedSerialization
	// WithParallelism sets the per-rank copy-engine worker count.
	WithParallelism = core.WithParallelism
	// WithReadParallelism sets the gather engine's worker count independently
	// of the write engine's (0 follows WithParallelism, 1 forces serial).
	WithReadParallelism = core.WithReadParallelism
	// WithMetrics enables latency/shape histograms on the handle (operation,
	// device, allocator and cache counters are always on; see PMEM.Metrics).
	WithMetrics = core.WithMetrics
	// WithMetricsSampling records every k-th histogram observation (<=1: all),
	// bounding WithMetrics' per-op cost on hot paths.
	WithMetricsSampling = core.WithMetricsSampling
	// WithTracing enables span-style operation tracing: persist/fence trace
	// points nest under the API call that triggered them (see PMEM.TraceSpans).
	WithTracing = core.WithTracing
	// WithVerifyReads selects the read-path CRC verification mode (VerifyOff,
	// VerifySampled, VerifyFull). Verification never advances virtual time.
	WithVerifyReads = core.WithVerifyReads
	// WithScrubber caps PMEM.Scrub at the given bytes per virtual second:
	// each pass paces itself against the virtual clock (0 = unpaced).
	WithScrubber = core.WithScrubber
	// WithAsync enables the asynchronous submission pipeline: StoreAsync,
	// StoreSubAsync, and LoadSubAsync queue their ops and return Futures,
	// and queued stores group-commit in batches (see PMEM.Flush/Drain).
	WithAsync = core.WithAsync
	// WithCoalesceWindow sets how many queued async submissions seal a batch
	// for group commit (0 = default 32).
	WithCoalesceWindow = core.WithCoalesceWindow
	// WithMaxInflight bounds the async submission queue; a full queue applies
	// backpressure to submitters (0 = 8 coalesce windows).
	WithMaxInflight = core.WithMaxInflight
)

// VerifyMode selects how aggressively reads check stored-block checksums.
type VerifyMode = core.VerifyMode

// Verify modes for WithVerifyReads.
const (
	// VerifyOff performs no read-path CRC checks (the default); reads of
	// quarantined blocks still fail fast.
	VerifyOff = core.VerifyOff
	// VerifySampled fully verifies every k-th load operation.
	VerifySampled = core.VerifySampled
	// VerifyFull verifies every gathered block on every load.
	VerifyFull = core.VerifyFull
)

// ScrubReport summarizes one PMEM.Scrub pass: variables and blocks swept,
// bytes verified, corruptions found and quarantined, virtual time consumed.
type ScrubReport = core.ScrubReport

// DeepReport is PMEM.DeepCheck's result: every published block's CRC
// verified, mismatches listed with their id, block index, and pool offset.
type DeepReport = fsck.DeepReport

// MetricsSnapshot is a point-in-time view of a handle's observability
// metrics, returned by PMEM.Metrics. Snapshots render as Prometheus-style
// exposition text (WriteProm/PromString) or are walked directly.
type MetricsSnapshot = obs.Snapshot

// Metric is one instrument's value within a MetricsSnapshot.
type Metric = obs.MetricValue

// Span is one traced operation: its id, rank, virtual start/end times, the
// device persist/fence points it hit, and nested child operations. Returned
// by PMEM.TraceSpans on handles opened with WithTracing.
type Span = obs.Span

// Mmap opens (creating if necessary) the pMEMCPY store at path. Collective:
// every rank calls it with the same arguments. Configuration is optional —
// pass nothing for the paper's evaluated defaults, or any combination of
// functional options (applied in argument order):
//
//	pm, err := pmemcpy.Mmap(c, n, "/data.pool",
//		pmemcpy.WithMapSync(), pmemcpy.WithParallelism(8))
func Mmap(c *Comm, n *Node, path string, opts ...MmapOption) (*PMEM, error) {
	return core.Mmap(c, n, path, opts...)
}

// Scalar is the set of element types storable in arrays and scalars.
type Scalar interface {
	~int8 | ~uint8 | ~int16 | ~uint16 | ~int32 | ~uint32 |
		~int64 | ~uint64 | ~float32 | ~float64
}

// dtypeOf maps a Go element type to its on-storage type tag.
func dtypeOf[T Scalar]() serial.DType {
	var z T
	switch any(z).(type) {
	case int8:
		return serial.Int8
	case uint8:
		return serial.Uint8
	case int16:
		return serial.Int16
	case uint16:
		return serial.Uint16
	case int32:
		return serial.Int32
	case uint32:
		return serial.Uint32
	case int64:
		return serial.Int64
	case uint64:
		return serial.Uint64
	case float32:
		return serial.Float32
	case float64:
		return serial.Float64
	default:
		// Derived types (~int8 etc.): size-based fallback keeps layout
		// correct; signedness of derived integer types is preserved by the
		// caller's view, so Uint* tags are safe for storage purposes.
		switch bytesview.Size[T]() {
		case 1:
			return serial.Uint8
		case 2:
			return serial.Uint16
		case 4:
			return serial.Uint32
		default:
			return serial.Uint64
		}
	}
}

// Store persists a single scalar value under id (pmem.store<T>(id, data)).
func Store[T Scalar](p *PMEM, id string, v T) error {
	d := &serial.Datum{Type: dtypeOf[T](), Payload: bytesview.Bytes([]T{v})}
	return p.StoreDatum(id, d)
}

// Load reads back a scalar stored with Store (pmem.load<T>(id)).
func Load[T Scalar](p *PMEM, id string) (T, error) {
	var zero T
	d, err := p.LoadDatum(id)
	if err != nil {
		return zero, err
	}
	want := dtypeOf[T]()
	if d.Type != want && d.Type.Size() != want.Size() {
		return zero, fmt.Errorf("pmemcpy: id %q holds %v, requested %v: %w", id, d.Type, want, ErrTypeMismatch)
	}
	vals := bytesview.OfCopy[T](d.Payload)
	if len(vals) == 0 {
		return zero, fmt.Errorf("pmemcpy: id %q holds no elements: %w", id, ErrNotFound)
	}
	return vals[0], nil
}

// StoreString persists a string under id (equivalent to p.StoreString).
func StoreString(p *PMEM, id, s string) error {
	return p.StoreString(id, s)
}

// LoadString reads back a string stored with StoreString (equivalent to
// p.LoadString).
func LoadString(p *PMEM, id string) (string, error) {
	return p.LoadString(id)
}

// Alloc declares the final global dimensions of array id
// (pmem.alloc<T>(id, ndims, dims)). The dimensions are stored automatically
// under id+"#dims".
func Alloc[T Scalar](p *PMEM, id string, dims ...uint64) error {
	return p.Alloc(id, dtypeOf[T](), dims)
}

// StoreSub stores this rank's block of array id at the given element offsets
// (pmem.store<T>(id, data, ndims, offsets, dimspp)). data is the block's
// row-major elements; its length must cover the product of counts.
func StoreSub[T Scalar](p *PMEM, id string, data []T, offs, counts []uint64) error {
	return p.StoreBlock(id, offs, counts, bytesview.Bytes(data))
}

// LoadSub fills dst with the requested block of array id
// (pmem.load<T>(id, data, ndims, offsets, dimspp)).
func LoadSub[T Scalar](p *PMEM, id string, dst []T, offs, counts []uint64) error {
	return p.LoadBlock(id, offs, counts, bytesview.Bytes(dst))
}

// Future is the completion handle of one asynchronous submission: Done
// reports completion, Wait joins it (driving the queue) and returns the op's
// error, Bytes the encoded bytes moved. A completed Future's data is readable
// and crash-durable; see PMEM.Flush and PMEM.Drain for the batch-level
// contract.
type Future = core.Future

// StoreSubAsync is StoreSub's asynchronous form: it submits the block store
// to the handle's queue (opened WithAsync) and returns its Future. data must
// stay untouched until the Future completes. Without WithAsync it stores
// synchronously and returns a completed Future. Adjacent same-id submissions
// coalesce into single blocks under identity codecs ("raw").
func StoreSubAsync[T Scalar](p *PMEM, id string, data []T, offs, counts []uint64) *Future {
	return p.StoreBlockAsync(id, offs, counts, bytesview.Bytes(data))
}

// LoadSubAsync is LoadSub's asynchronous form: dst is filled when the Future
// completes, observing every earlier same-id submission on this handle.
func LoadSubAsync[T Scalar](p *PMEM, id string, dst []T, offs, counts []uint64) *Future {
	return p.LoadBlockAsync(id, offs, counts, bytesview.Bytes(dst))
}

// StoreAsync is Store's asynchronous form: it submits the scalar store and
// returns its Future.
func StoreAsync[T Scalar](p *PMEM, id string, v T) *Future {
	d := &serial.Datum{Type: dtypeOf[T](), Payload: bytesview.Bytes([]T{v})}
	return p.StoreDatumAsync(id, d)
}

// StoreSlice stores a whole array in one call: it declares dims (Alloc) and
// stores the full extent.
func StoreSlice[T Scalar](p *PMEM, id string, data []T, dims ...uint64) error {
	if err := Alloc[T](p, id, dims...); err != nil {
		return err
	}
	offs := make([]uint64, len(dims))
	return StoreSub(p, id, data, offs, dims)
}

// LoadSlice reads back a whole array and its dimensions.
func LoadSlice[T Scalar](p *PMEM, id string) ([]T, []uint64, error) {
	dims, err := LoadDims(p, id)
	if err != nil {
		return nil, nil, err
	}
	n := uint64(1)
	for _, d := range dims {
		n *= d
	}
	out := make([]T, n)
	offs := make([]uint64, len(dims))
	if err := LoadSub(p, id, out, offs, dims); err != nil {
		return nil, nil, err
	}
	return out, dims, nil
}

// LoadDims returns the dimensions declared for array id
// (pmem.load_dims(id)).
func LoadDims(p *PMEM, id string) ([]uint64, error) {
	_, dims, err := p.LoadDims(id)
	return dims, err
}

// PFS is the shared burst-buffer/mass-storage tier behind the node-local
// PMEM (the paper's Figure 1 architecture).
type PFS = burstbuffer.PFS

// NewPFS builds a PFS tier; zero arguments select the default profile
// (2 GB/s node uplink, 500 µs per-operation latency).
func NewPFS(bandwidth float64, latency time.Duration) *PFS {
	return burstbuffer.NewPFS(bandwidth, latency)
}

// Flusher asynchronously drains a store to a PFS, the paper's "burst buffer
// ... triggered to asynchronously flush the buffered data to mass storage".
type Flusher = burstbuffer.Flusher

// NewFlusher builds a flusher targeting pfs. Set Evict to free PMEM
// capacity as variables land safely on the PFS.
func NewFlusher(pfs *PFS) *Flusher { return burstbuffer.NewFlusher(pfs) }

// Restore stages PFS objects under prefix back into the store (prefetch).
func Restore(p *PMEM, pfs *PFS, prefix string) (int64, error) {
	return burstbuffer.Restore(p, pfs, prefix)
}

// Compact reclaims pool storage shadowed by overwrites of array id (stores
// append blocks; compaction frees blocks fully contained in newer ones). It
// returns the number of blocks freed and never changes what reads observe.
// ctx cancellation (mirroring Scrub) stops the pass between its phases.
func Compact(ctx context.Context, p *PMEM, id string) (int, error) {
	return p.Compact(ctx, id)
}

// BlockStats describes one stored block's shape and value range.
type BlockStats = core.BlockStats

// MinMax returns the value range of array id. Under the default BP4
// serializer this reads only per-block characteristics (a few header bytes
// per block), the "lightweight data characterization" the paper credits the
// BP format with; stat-less codecs fall back to scanning.
func MinMax(p *PMEM, id string) (mn, mx float64, err error) {
	return p.MinMax(id)
}

// FindBlocks returns the stored blocks of id whose value range intersects
// [lo, hi], skipping non-matching blocks without reading their data.
func FindBlocks(p *PMEM, id string, lo, hi float64) ([]BlockStats, error) {
	return p.FindBlocks(id, lo, hi)
}

// StoreStruct persists a structured value — a Go struct with arbitrary
// nesting, dynamically sized slices, fixed arrays and strings — under id.
// This covers the two things the paper notes HDF5 compound types cannot
// express: nested compound types and dynamically sized arrays. v may be a
// struct or a pointer to one; only exported fields are stored. Equivalent to
// p.StoreStruct.
func StoreStruct(p *PMEM, id string, v any) error {
	return p.StoreStruct(id, v)
}

// LoadStruct reads a structured value stored with StoreStruct into out,
// which must be a non-nil pointer to a struct. Fields are matched by name:
// unknown fields in the data are skipped and missing ones keep their current
// values, so readers and writers may evolve independently. Equivalent to
// p.LoadStruct.
func LoadStruct(p *PMEM, id string, out any) error {
	return p.LoadStruct(id, out)
}
