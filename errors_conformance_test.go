package pmemcpy_test

// Error-surface conformance: every public API path that fails for one of the
// documented reasons must wrap the matching sentinel, so callers dispatch
// with errors.Is instead of matching message text. The table drives the v1
// free functions, the v2 Array[T] handles, both layouts, and the parallel
// write/gather engines through representative failures of each class.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pmemcpy"
)

func TestErrorConformance(t *testing.T) {
	const bigElems = 96 * 1024 // 768 KB of float64: over the parallel threshold

	cases := []struct {
		name  string
		pools int // node devices and namespace members (0/1: single pool)
		opts  []pmemcpy.MmapOption
		fn    func(p *pmemcpy.PMEM, n *pmemcpy.Node) error
		want  error
	}{
		{
			name: "Load missing id",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				_, err := pmemcpy.Load[int64](p, "missing")
				return err
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "LoadString missing id",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				_, err := pmemcpy.LoadString(p, "missing")
				return err
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "LoadDims missing id",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				_, err := pmemcpy.LoadDims(p, "missing")
				return err
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "LoadSub missing array",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				dst := make([]float64, 4)
				return pmemcpy.LoadSub(p, "missing", dst, []uint64{0}, []uint64{4})
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "LoadSub coverage gap",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "gap", 8); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := pmemcpy.StoreSub(p, "gap", make([]float64, 4), []uint64{0}, []uint64{4}); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				dst := make([]float64, 8)
				return pmemcpy.LoadSub(p, "gap", dst, []uint64{0}, []uint64{8})
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "OpenArray missing id",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				_, err := pmemcpy.OpenArray[float64](p, "missing")
				return err
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "Compact missing id",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				_, err := pmemcpy.Compact(context.Background(), p, "missing")
				return err
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "hierarchy Load missing id",
			opts: []pmemcpy.MmapOption{pmemcpy.WithLayout(pmemcpy.LayoutHierarchy)},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				_, err := pmemcpy.Load[int64](p, "missing")
				return err
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "hierarchy LoadSub missing blocks",
			opts: []pmemcpy.MmapOption{pmemcpy.WithLayout(pmemcpy.LayoutHierarchy)},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "empty", 8); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				dst := make([]float64, 8)
				return pmemcpy.LoadSub(p, "empty", dst, []uint64{0}, []uint64{8})
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "Load wrong element type",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Store(p, "scalar", int64(7)); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				_, err := pmemcpy.Load[float32](p, "scalar")
				return err
			},
			want: pmemcpy.ErrTypeMismatch,
		},
		{
			name: "LoadString on scalar",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Store(p, "scalar", int64(7)); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				_, err := pmemcpy.LoadString(p, "scalar")
				return err
			},
			want: pmemcpy.ErrTypeMismatch,
		},
		{
			name: "LoadStruct on scalar",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Store(p, "scalar", int64(7)); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				var out struct{ X int64 }
				return pmemcpy.LoadStruct(p, "scalar", &out)
			},
			want: pmemcpy.ErrTypeMismatch,
		},
		{
			name: "OpenArray wrong element type",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				_, err := pmemcpy.OpenArray[float32](p, "arr")
				return err
			},
			want: pmemcpy.ErrTypeMismatch,
		},
		{
			name: "Alloc conflicting dims",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				return pmemcpy.Alloc[float64](p, "arr", 32)
			},
			want: pmemcpy.ErrTypeMismatch,
		},
		{
			name: "Alloc without dims",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				return pmemcpy.Alloc[float64](p, "arr")
			},
			want: pmemcpy.ErrOutOfBounds,
		},
		{
			name: "StoreSub outside extent",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				return pmemcpy.StoreSub(p, "arr", make([]float64, 8), []uint64{12}, []uint64{8})
			},
			want: pmemcpy.ErrOutOfBounds,
		},
		{
			name: "StoreSub rank mismatch",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				return pmemcpy.StoreSub(p, "arr", make([]float64, 4), []uint64{0, 0}, []uint64{2, 2})
			},
			want: pmemcpy.ErrOutOfBounds,
		},
		{
			name: "Array LoadSub outside extent",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				a, err := pmemcpy.CreateArray[float64](p, "arr", 16)
				if err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				return a.LoadSub(make([]float64, 8), []uint64{12}, []uint64{8})
			},
			want: pmemcpy.ErrOutOfBounds,
		},
		{
			name: "Store media failure",
			fn: func(p *pmemcpy.PMEM, n *pmemcpy.Node) error {
				// 4 consecutive transient failures exceed the device's retry
				// budget, escalating the next persist to an ErrMedia.
				n.Device.InjectTransient(0, 4)
				defer n.Device.DisarmInjection()
				return pmemcpy.Store(p, "scalar", int64(7))
			},
			want: pmemcpy.ErrMedia,
		},
		{
			name: "parallel StoreSub outside extent",
			opts: []pmemcpy.MmapOption{pmemcpy.WithParallelism(4)},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "big", bigElems); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				return pmemcpy.StoreSub(p, "big", make([]float64, bigElems), []uint64{1}, []uint64{bigElems})
			},
			want: pmemcpy.ErrOutOfBounds,
		},
		{
			name: "parallel StoreSub media failure",
			opts: []pmemcpy.MmapOption{pmemcpy.WithParallelism(4)},
			fn: func(p *pmemcpy.PMEM, n *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "big", bigElems); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				n.Device.InjectTransient(0, 4)
				defer n.Device.DisarmInjection()
				return pmemcpy.StoreSub(p, "big", make([]float64, bigElems), []uint64{0}, []uint64{bigElems})
			},
			want: pmemcpy.ErrMedia,
		},
		{
			name: "async StoreSub outside extent",
			opts: []pmemcpy.MmapOption{pmemcpy.WithAsync()},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				fut := pmemcpy.StoreSubAsync(p, "arr", make([]float64, 8), []uint64{12}, []uint64{8})
				return fut.Wait(context.Background())
			},
			want: pmemcpy.ErrOutOfBounds,
		},
		{
			name: "async Store missing Alloc",
			opts: []pmemcpy.MmapOption{pmemcpy.WithAsync()},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				fut := pmemcpy.StoreSubAsync(p, "missing", make([]float64, 4), []uint64{0}, []uint64{4})
				return fut.Wait(context.Background())
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "async Load missing id",
			opts: []pmemcpy.MmapOption{pmemcpy.WithAsync()},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				dst := make([]float64, 4)
				fut := pmemcpy.LoadSubAsync(p, "missing", dst, []uint64{0}, []uint64{4})
				return fut.Wait(context.Background())
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "async Store media failure",
			opts: []pmemcpy.MmapOption{pmemcpy.WithAsync()},
			fn: func(p *pmemcpy.PMEM, n *pmemcpy.Node) error {
				n.Device.InjectTransient(0, 4)
				defer n.Device.DisarmInjection()
				fut := pmemcpy.StoreAsync(p, "scalar", int64(7))
				return fut.Wait(context.Background())
			},
			want: pmemcpy.ErrMedia,
		},
		{
			name: "async Load corrupt block",
			opts: []pmemcpy.MmapOption{
				pmemcpy.WithAsync(),
				pmemcpy.WithVerifyReads(pmemcpy.VerifyFull),
			},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := pmemcpy.StoreSub(p, "arr", make([]float64, 16), []uint64{0}, []uint64{16}); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if _, _, err := p.InjectCorruption("arr", 0, 8, 1, 0x04); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				dst := make([]float64, 16)
				fut := pmemcpy.LoadSubAsync(p, "arr", dst, []uint64{0}, []uint64{16})
				return fut.Wait(context.Background())
			},
			want: pmemcpy.ErrCorrupt,
		},
		{
			// The sentinel must survive pool routing: a miss is a miss no
			// matter which member the id hashes to.
			name:  "multi-pool Load missing id",
			pools: 4,
			opts:  []pmemcpy.MmapOption{pmemcpy.WithPools(4)},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				_, err := pmemcpy.Load[int64](p, "missing")
				return err
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name:  "multi-pool parallel StoreSub outside extent",
			pools: 4,
			opts:  []pmemcpy.MmapOption{pmemcpy.WithPools(4), pmemcpy.WithParallelism(4)},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "big", bigElems); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				return pmemcpy.StoreSub(p, "big", make([]float64, bigElems), []uint64{1}, []uint64{bigElems})
			},
			want: pmemcpy.ErrOutOfBounds,
		},
		{
			name:  "multi-pool Store media failure",
			pools: 4,
			opts:  []pmemcpy.MmapOption{pmemcpy.WithPools(4)},
			fn: func(p *pmemcpy.PMEM, n *pmemcpy.Node) error {
				// Arm every member device: the id routes to one pool, and the
				// escalated persist failure must surface from whichever member
				// it lands on.
				for i := 0; i < 4; i++ {
					n.DeviceAt(i).InjectTransient(0, 4)
					defer n.DeviceAt(i).DisarmInjection()
				}
				return pmemcpy.Store(p, "scalar", int64(7))
			},
			want: pmemcpy.ErrMedia,
		},
		{
			name:  "multi-pool async Store missing Alloc",
			pools: 4,
			opts:  []pmemcpy.MmapOption{pmemcpy.WithPools(4), pmemcpy.WithAsync()},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				fut := pmemcpy.StoreSubAsync(p, "missing", make([]float64, 4), []uint64{0}, []uint64{4})
				return fut.Wait(context.Background())
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			// Corruption on a striped block must cross both the pool routing
			// and the async completion boundary intact.
			name:  "multi-pool async Load corrupt block",
			pools: 4,
			opts: []pmemcpy.MmapOption{
				pmemcpy.WithPools(4),
				pmemcpy.WithAsync(),
				pmemcpy.WithVerifyReads(pmemcpy.VerifyFull),
			},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := pmemcpy.StoreSub(p, "arr", make([]float64, 16), []uint64{0}, []uint64{16}); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if _, _, err := p.InjectCorruption("arr", 0, 8, 1, 0x04); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				dst := make([]float64, 16)
				fut := pmemcpy.LoadSubAsync(p, "arr", dst, []uint64{0}, []uint64{16})
				return fut.Wait(context.Background())
			},
			want: pmemcpy.ErrCorrupt,
		},
		{
			name: "LoadView missing id",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				v, err := pmemcpy.LoadView[float64](p, "missing", []uint64{0}, []uint64{4})
				if v != nil {
					v.Close()
				}
				return err
			},
			want: pmemcpy.ErrNotFound,
		},
		{
			name: "LoadView wrong element type",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				v, err := pmemcpy.LoadView[float32](p, "arr", []uint64{0}, []uint64{16})
				if v != nil {
					v.Close()
				}
				return err
			},
			want: pmemcpy.ErrTypeMismatch,
		},
		{
			name: "View data after Close",
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := pmemcpy.StoreSub(p, "arr", make([]float64, 16), []uint64{0}, []uint64{16}); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				v, err := pmemcpy.LoadView[float64](p, "arr", []uint64{0}, []uint64{16})
				if err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := v.Close(); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				_, err = v.Data()
				return err
			},
			want: pmemcpy.ErrStaleView,
		},
		{
			// The staleness sentinel must survive pool routing like every
			// other error class.
			name:  "multi-pool View data after Close",
			pools: 4,
			opts:  []pmemcpy.MmapOption{pmemcpy.WithPools(4)},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := pmemcpy.StoreSub(p, "arr", make([]float64, 16), []uint64{0}, []uint64{16}); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				v, err := pmemcpy.LoadView[float64](p, "arr", []uint64{0}, []uint64{16})
				if err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := v.Close(); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				_, err = v.Data()
				return err
			},
			want: pmemcpy.ErrStaleView,
		},
		{
			// ...and the async boundary: a view opened against a batching
			// handle still fails fast once closed.
			name: "async View data after Close",
			opts: []pmemcpy.MmapOption{pmemcpy.WithAsync()},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				if err := pmemcpy.Alloc[float64](p, "arr", 16); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				fut := pmemcpy.StoreSubAsync(p, "arr", make([]float64, 16), []uint64{0}, []uint64{16})
				v, err := pmemcpy.LoadView[float64](p, "arr", []uint64{0}, []uint64{16})
				if err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := fut.Wait(context.Background()); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := v.Close(); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				_, err = v.Data()
				return err
			},
			want: pmemcpy.ErrStaleView,
		},
		{
			name: "parallel gather coverage gap",
			opts: []pmemcpy.MmapOption{pmemcpy.WithReadParallelism(4)},
			fn: func(p *pmemcpy.PMEM, _ *pmemcpy.Node) error {
				// Half the extent is stored (384 KB, over the parallel
				// threshold); reading the full extent leaves a gap.
				if err := pmemcpy.Alloc[float64](p, "big", bigElems); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				if err := pmemcpy.StoreSub(p, "big", make([]float64, bigElems/2), []uint64{0}, []uint64{bigElems / 2}); err != nil {
					return fmt.Errorf("setup: %v", err)
				}
				dst := make([]float64, bigElems)
				return pmemcpy.LoadSub(p, "big", dst, []uint64{0}, []uint64{bigElems})
			},
			want: pmemcpy.ErrNotFound,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var nopts []pmemcpy.NodeOption
			if tc.pools > 1 {
				nopts = append(nopts, pmemcpy.WithPMEMPools(tc.pools))
			}
			n := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 64<<20, nopts...)
			_, err := pmemcpy.Run(n, 1, func(c *pmemcpy.Comm) error {
				p, err := pmemcpy.Mmap(c, n, "/conf.pool", tc.opts...)
				if err != nil {
					return fmt.Errorf("mmap: %v", err)
				}
				got := tc.fn(p, n)
				if got == nil {
					return fmt.Errorf("operation succeeded, want error wrapping %v", tc.want)
				}
				if !errors.Is(got, tc.want) {
					return fmt.Errorf("error %q does not wrap %v", got, tc.want)
				}
				return p.Munmap()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeleteAbsent pins that deleting an absent id reports existed=false
// without an error — absence is an answer, not a failure.
func TestDeleteAbsent(t *testing.T) {
	n := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 64<<20)
	_, err := pmemcpy.Run(n, 1, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/del.pool")
		if err != nil {
			return err
		}
		if existed, err := p.Delete("missing"); err != nil || existed {
			return fmt.Errorf("Delete(missing) = (%v, %v), want (false, nil)", existed, err)
		}
		a, err := pmemcpy.CreateArray[float64](p, "arr", 16)
		if err != nil {
			return err
		}
		if err := a.StoreSub(make([]float64, 16), []uint64{0}, []uint64{16}); err != nil {
			return err
		}
		if existed, err := a.Delete(); err != nil || !existed {
			return fmt.Errorf("Array.Delete = (%v, %v), want (true, nil)", existed, err)
		}
		if _, err := pmemcpy.LoadDims(p, "arr"); !errors.Is(err, pmemcpy.ErrNotFound) {
			return fmt.Errorf("LoadDims after delete = %v, want ErrNotFound", err)
		}
		return p.Munmap()
	})
	if err != nil {
		t.Fatal(err)
	}
}
