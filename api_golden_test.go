package pmemcpy_test

// Public-API golden snapshot: every exported name in package pmemcpy —
// functions, methods on exported receivers, types (exported fields only),
// consts and vars — is rendered one per line and compared against
// testdata/api_golden.txt. The v2 surface is a deliberate artifact: a change
// that widens or narrows it must show up in review as a golden diff, not slip
// in as an incidental hunk. Regenerate with:
//
//	go test -run TestPublicAPIGolden -update .

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPIGolden = flag.Bool("update", false, "rewrite testdata goldens")

func TestPublicAPIGolden(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["pmemcpy"]
	if !ok {
		t.Fatalf("package pmemcpy not found in .")
	}

	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d.Recv) {
					continue
				}
				fn := *d
				fn.Body = nil
				fn.Doc = nil
				lines = append(lines, renderDecl(fset, &fn))
			case *ast.GenDecl:
				lines = append(lines, renderGen(fset, d)...)
			}
		}
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "api_golden.txt")
	if *updateAPIGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d exported declarations)", golden, len(lines))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if got != string(want) {
		t.Errorf("public API surface drifted from %s:\n%s\nIf the change is intended, regenerate with: go test -run TestPublicAPIGolden -update .",
			golden, diffLines(string(want), got))
	}
}

// exportedRecv reports whether a receiver (nil for plain functions) names an
// exported type, so methods on unexported types stay out of the snapshot.
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil {
		return true
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// renderGen renders the exported parts of a const/var/type declaration, one
// line per exported spec.
func renderGen(fset *token.FileSet, d *ast.GenDecl) []string {
	var out []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			ts := *s
			ts.Doc, ts.Comment = nil, nil
			if st, ok := ts.Type.(*ast.StructType); ok {
				ts.Type = exportedStruct(st)
			}
			out = append(out, "type "+renderDecl(fset, &ts))
		case *ast.ValueSpec:
			vs := *s
			vs.Doc, vs.Comment = nil, nil
			var keep []*ast.Ident
			for _, name := range vs.Names {
				if name.IsExported() {
					keep = append(keep, name)
				}
			}
			if len(keep) == 0 {
				continue
			}
			// Values are part of the contract for consts (callers bake them
			// in) but implementation detail for vars, whose initializer may
			// reference unexported code; keep names and types only for vars.
			if d.Tok == token.VAR {
				vs.Values = nil
			}
			vs.Names = keep
			out = append(out, d.Tok.String()+" "+renderDecl(fset, &vs))
		}
	}
	return out
}

// exportedStruct returns a copy of st holding only its exported fields —
// unexported fields are private layout, not API.
func exportedStruct(st *ast.StructType) *ast.StructType {
	cp := *st
	fields := &ast.FieldList{}
	for _, f := range st.Fields.List {
		keep := len(f.Names) == 0 // embedded: rendered name decides
		for _, name := range f.Names {
			if name.IsExported() {
				keep = true
			}
		}
		if keep {
			fc := *f
			fc.Doc, fc.Comment = nil, nil
			fields.List = append(fields.List, &fc)
		}
	}
	cp.Fields = fields
	return &cp
}

// renderDecl prints an AST node on one whitespace-normalized line.
func renderDecl(fset *token.FileSet, node any) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// diffLines reports the lines present in exactly one of want/got.
func diffLines(want, got string) string {
	w := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		w[l] = true
	}
	g := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		g[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !g[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !w[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(ordering or whitespace change)"
	}
	return b.String()
}
