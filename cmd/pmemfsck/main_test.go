package main

import (
	"strings"
	"testing"
)

func TestFsckCleanPoolExitsZero(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-fsck"}, &out); code != 0 {
		t.Fatalf("exit %d on a clean pool, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "pool clean") {
		t.Fatalf("output missing clean summary:\n%s", out.String())
	}
}

// TestFsckTornMetadataRecord is the regression for the corrupt-pool path: a
// deliberately torn metadata record must produce a nonzero exit and name the
// first violated invariant.
func TestFsckTornMetadataRecord(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-fsck", "-corrupt"}, &out); code != 1 {
		t.Fatalf("exit %d on a corrupt pool (want 1), output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "first violated invariant: ht.value") {
		t.Fatalf("output does not name the violated invariant:\n%s", out.String())
	}
}

func TestFsckCleanSetExitsZero(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-fsck", "-pools", "4"}, &out); code != 0 {
		t.Fatalf("exit %d on a clean set, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "set clean: 4 pools") {
		t.Fatalf("output missing clean set summary:\n%s", out.String())
	}
}

// TestFsckSmashedSetMember is the regression for the multi-pool corrupt path:
// an invalid member under a published set must be reported as a set.member
// violation with a nonzero exit.
func TestFsckSmashedSetMember(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-fsck", "-pools", "4", "-corrupt"}, &out); code != 1 {
		t.Fatalf("exit %d on a corrupt set (want 1), output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "first violated invariant: set.member") {
		t.Fatalf("output does not name the violated set invariant:\n%s", out.String())
	}
}

func TestUnknownModeExitsTwo(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-mode", "nonsense"}, &out); code != 2 {
		t.Fatalf("exit %d on unknown mode (want 2)", code)
	}
}

// TestSweepModeStillPasses pins the original sweep behavior end to end on
// one adversary (the full matrix runs in CI via the binary / make verify).
func TestSweepModeStillPasses(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-mode", "loseall"}, &out); code != 0 {
		t.Fatalf("sweep failed (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OK: all") {
		t.Fatalf("sweep output:\n%s", out.String())
	}
}
