package main

import (
	"fmt"
	"io"

	"pmemcpy"
)

// deepRanks and deepElems fix the -deep workload shape; the store contents
// are fully deterministic, so the summary line (and, under -corrupt, the
// damaged offsets) are stable across runs and pinned by golden files.
const (
	deepRanks = 2
	deepElems = 64
)

// buildStore populates a deterministic store the way the experiment harness
// does: a few decomposed arrays plus scalar metadata, written by deepRanks
// parallel ranks.
func buildStore(n *pmemcpy.Node) error {
	_, err := pmemcpy.Run(n, deepRanks, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/deep.pool")
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := pmemcpy.Store(p, "sim/timestep", int64(42)); err != nil {
				return err
			}
			if err := pmemcpy.StoreString(p, "sim/label", "deep-check dataset"); err != nil {
				return err
			}
		}
		for v := 0; v < 3; v++ {
			name := fmt.Sprintf("rect%d", v)
			gdim := uint64(deepRanks) * deepElems
			if err := pmemcpy.Alloc[float64](p, name, gdim); err != nil {
				return err
			}
			data := make([]float64, deepElems)
			off := uint64(c.Rank()) * deepElems
			for i := range data {
				data[i] = float64(v)*1e6 + float64(off) + float64(i)
			}
			if err := pmemcpy.StoreSub(p, name, data, []uint64{off}, []uint64{deepElems}); err != nil {
				return err
			}
		}
		return p.Munmap()
	})
	return err
}

// runDeep builds the store, optionally injects silent corruption (damaged
// bytes, untouched checksums), and sweeps every published block's CRC32C.
// Exit codes: 0 clean, 2 corruption detected, 3 infrastructure failure.
func runDeep(w io.Writer, corrupt bool) int {
	n := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 64<<20)
	if err := buildStore(n); err != nil {
		fmt.Fprintf(w, "pmemfsck: building store: %v\n", err)
		return 3
	}

	var rep *pmemcpy.DeepReport
	_, err := pmemcpy.Run(n, 1, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/deep.pool")
		if err != nil {
			return err
		}
		if corrupt {
			// An array block: flip one bit mid-payload. A whole value:
			// invert its first 8 bytes. Neither touches the recorded CRC.
			if _, _, err := p.InjectCorruption("rect1", 0, 100, 1, 0x01); err != nil {
				return fmt.Errorf("injecting: %w", err)
			}
			if _, _, err := p.InjectCorruption("sim/label", -1, 0, 8, 0xff); err != nil {
				return fmt.Errorf("injecting: %w", err)
			}
			fmt.Fprintf(w, "damaged stored bytes of \"rect1\" and \"sim/label\" (checksums untouched)\n")
		}
		rep, err = p.DeepCheck()
		if err != nil {
			return err
		}
		return p.Munmap()
	})
	if err != nil {
		fmt.Fprintf(w, "pmemfsck: %v\n", err)
		return 3
	}

	fmt.Fprintf(w, "%s\n", rep.Summary())
	if !rep.OK() {
		for _, c := range rep.Corrupt {
			fmt.Fprintf(w, "corrupt: %s\n", c)
		}
		return 2
	}
	return 0
}
