// Command pmemfsck exercises pMEMCPY's crash-consistency machinery: it runs
// a transactional key-value workload against the emulated device, injects a
// power failure after every possible persist point, recovers the pool, and
// checks the recovered state against the set of states the undo-log protocol
// permits (atomicity: committed data intact, uncommitted data absent or
// fully rolled back). Every recovered pool additionally passes the
// structural checker (internal/fsck) — allocator, lane, and hashtable
// invariants.
//
// With -fsck it instead acts as a plain filesystem-checker: build a pool,
// verify its structural invariants, and report the first violated one
// (nonzero exit) if the pool is corrupt. -corrupt deliberately tears a
// metadata record first, to demonstrate — and regression-test — detection.
//
// With -deep it runs the content-level companion of the structural check: it
// builds a full pMEMCPY store and recomputes every published block's CRC32C
// against the medium (core.DeepCheck). A clean store exits 0 with a stable
// summary line; detected corruption exits 2 and lists every damaged block's
// id, block index, pool offset, and length. -corrupt deliberately damages
// stored bytes first (an array block and a scalar's value block) without
// touching the recorded checksums — silent media corruption — to demonstrate
// and regression-test detection.
//
// Examples:
//
//	pmemfsck                 # sweep all crash points, all adversary modes
//	pmemfsck -mode random -seed 7
//	pmemfsck -v              # report every crash point's outcome
//	pmemfsck -fsck           # structural check of a clean pool
//	pmemfsck -fsck -corrupt  # ...of a pool with a torn metadata record
//	pmemfsck -fsck -pools 4  # ...of a 4-member pool set (cross-pool commit)
//	pmemfsck -fsck -pools 4 -corrupt  # ...with one member's header smashed
//	pmemfsck -deep           # checksum every stored block of a full store
//	pmemfsck -deep -corrupt  # ...after silently damaging stored bytes
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"pmemcpy/internal/fsck"
	"pmemcpy/internal/pmdk"
	"pmemcpy/internal/pmem"
	"pmemcpy/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("pmemfsck", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "all", `crash adversary: "loseall", "keepall", "random", or "all"`)
		seed    = fs.Int64("seed", 1, "seed for the random adversary")
		verbose = fs.Bool("v", false, "report every crash point")
		check   = fs.Bool("fsck", false, "structural check mode: build a pool and verify its invariants")
		deep    = fs.Bool("deep", false, "content check mode: build a store and verify every block checksum")
		corrupt = fs.Bool("corrupt", false, "with -fsck/-deep: damage the pool before checking")
		pools   = fs.Int("pools", 1, "with -fsck: check a pool set with this many members")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *deep {
		return runDeep(w, *corrupt)
	}
	if *check {
		if *pools > 1 {
			return runFsckSet(w, *pools, *corrupt)
		}
		return runFsck(w, *corrupt)
	}

	modes := map[string][]pmem.CrashMode{
		"loseall": {pmem.CrashLoseAll},
		"keepall": {pmem.CrashKeepAll},
		"random":  {pmem.CrashRandom},
		"all":     {pmem.CrashLoseAll, pmem.CrashKeepAll, pmem.CrashRandom},
	}[*mode]
	if modes == nil {
		fmt.Fprintf(w, "pmemfsck: unknown mode %q\n", *mode)
		return 2
	}

	total, failures := 0, 0
	for _, m := range modes {
		points, bad := sweep(w, m, *seed, *verbose)
		fmt.Fprintf(w, "mode %-8v: %3d crash points checked, %d violations\n", modeName(m), points, bad)
		total += points
		failures += bad
	}
	if failures > 0 {
		fmt.Fprintf(w, "FAIL: %d of %d crash points violated consistency\n", failures, total)
		return 1
	}
	fmt.Fprintf(w, "OK: all %d crash points recovered to consistent states\n", total)
	return 0
}

// buildPool formats a small pool with a published hashtable of a few keys,
// the way core.Mmap lays a store out.
func buildPool() (*pmem.Mapping, *pmdk.Hashtable, *sim.Clock, error) {
	machine := sim.NewMachine(sim.DefaultConfig())
	machine.SetConcurrency(1)
	dev := pmem.New(machine, 4<<20)
	mp, err := pmem.NewMapping(dev, 0, 4<<20, false)
	if err != nil {
		return nil, nil, nil, err
	}
	clk := new(sim.Clock)
	pool, err := pmdk.Create(clk, mp, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	tx, err := pool.Begin(clk)
	if err != nil {
		return nil, nil, nil, err
	}
	htID, err := pmdk.CreateHashtable(tx, 64)
	if err != nil {
		return nil, nil, nil, err
	}
	root, _ := pool.Root()
	if err := tx.WriteU64(root, uint64(htID)); err != nil {
		return nil, nil, nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, nil, nil, err
	}
	ht, err := pmdk.OpenHashtable(clk, pool, htID)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := 0; i < 8; i++ {
		if err := ht.Put(clk, []byte(fmt.Sprintf("var-%d", i)), []byte("payload")); err != nil {
			return nil, nil, nil, err
		}
	}
	return mp, ht, clk, nil
}

// runFsck builds a pool (optionally tearing one metadata record) and runs the
// structural checker, reporting the first violated invariant.
func runFsck(w io.Writer, corrupt bool) int {
	mp, ht, clk, err := buildPool()
	if err != nil {
		fmt.Fprintf(w, "pmemfsck: building pool: %v\n", err)
		return 2
	}
	if corrupt {
		// Tear one key's metadata: scribble the state word of its value
		// block's header, as a torn cacheline across the header boundary
		// would.
		vid, _, ok, err := ht.GetRef(clk, []byte("var-3"))
		if err != nil || !ok {
			fmt.Fprintf(w, "pmemfsck: locating record to corrupt: %v\n", err)
			return 2
		}
		s, err := mp.Slice(int64(vid)-8, 8)
		if err != nil {
			fmt.Fprintf(w, "pmemfsck: %v\n", err)
			return 2
		}
		binary.LittleEndian.PutUint64(s, 0x7042)
		fmt.Fprintf(w, "tore metadata record of \"var-3\"\n")
	}
	rep, err := fsck.Check(clk, mp)
	if err != nil {
		fmt.Fprintf(w, "pmemfsck: %v\n", err)
		return 2
	}
	fmt.Fprintf(w, "%s\n", rep.Summary())
	if !rep.OK() {
		fmt.Fprintf(w, "first violated invariant: %s\n", rep.First())
		return 1
	}
	return 0
}

// runFsckSet builds a published npools-member pool set (the cross-pool commit
// protocol core.Mmap uses for a sharded namespace) and runs the set checker:
// the publish record gates everything, and every member must carry a valid,
// matching descriptor. With -corrupt one member's pool header is smashed —
// under a published set that is a genuine violation, not a crash artifact.
func runFsckSet(w io.Writer, npools int, corrupt bool) int {
	machine := sim.NewMachine(sim.DefaultConfig())
	machine.SetConcurrency(1)
	clk := new(sim.Clock)
	maps := make([]*pmem.Mapping, npools)
	for i := range maps {
		dev := pmem.New(machine, 4<<20)
		mp, err := pmem.NewMapping(dev, 0, 4<<20, false)
		if err != nil {
			fmt.Fprintf(w, "pmemfsck: member %d: %v\n", i, err)
			return 2
		}
		maps[i] = mp
	}
	_, err := pmdk.CreateSet(clk, 0x70736574, maps, nil, func(i int, p *pmdk.Pool) error {
		tx, err := p.Begin(clk)
		if err != nil {
			return err
		}
		htID, err := pmdk.CreateHashtable(tx, 64)
		if err != nil {
			tx.Abort()
			return err
		}
		root, _ := p.Root()
		if err := tx.WriteU64(root, uint64(htID)); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	})
	if err != nil {
		fmt.Fprintf(w, "pmemfsck: creating set: %v\n", err)
		return 2
	}
	if corrupt {
		victim := npools - 1
		s, err := maps[victim].Slice(0, 8)
		if err != nil {
			fmt.Fprintf(w, "pmemfsck: %v\n", err)
			return 2
		}
		s[0] ^= 0xff
		fmt.Fprintf(w, "smashed pool header of set member %d\n", victim)
	}
	rep, err := fsck.CheckSet(clk, maps)
	if err != nil {
		fmt.Fprintf(w, "pmemfsck: %v\n", err)
		return 2
	}
	fmt.Fprintf(w, "%s\n", rep.Summary())
	if !rep.OK() {
		fmt.Fprintf(w, "first violated invariant: %s\n", rep.First())
		return 1
	}
	return 0
}

func modeName(m pmem.CrashMode) string {
	switch m {
	case pmem.CrashLoseAll:
		return "loseall"
	case pmem.CrashKeepAll:
		return "keepall"
	default:
		return "random"
	}
}

// sweep runs the update+insert workload, crashing after the k-th persist for
// every k until the workload completes without injection firing.
func sweep(w io.Writer, mode pmem.CrashMode, seed int64, verbose bool) (points, violations int) {
	rng := rand.New(rand.NewSource(seed))
	for k := int64(0); ; k++ {
		points++
		completed, err := crashPoint(w, mode, k, rng, verbose)
		if err != nil {
			violations++
			fmt.Fprintf(w, "  k=%d: VIOLATION: %v\n", k, err)
		}
		if completed {
			return points, violations
		}
		if k > 5000 {
			fmt.Fprintln(w, "  sweep did not terminate (workload never completes)")
			violations++
			return points, violations
		}
	}
}

// crashPoint builds a fresh pool with two committed keys, then (under
// injection) updates one and inserts another, crashes, recovers, and checks
// the permitted states plus the structural invariants.
func crashPoint(w io.Writer, mode pmem.CrashMode, k int64, rng *rand.Rand, verbose bool) (completed bool, err error) {
	machine := sim.NewMachine(sim.DefaultConfig())
	machine.SetConcurrency(1)
	dev := pmem.New(machine, 16<<20, pmem.WithCrashTracking())
	mp, err := pmem.NewMapping(dev, 0, 16<<20, false)
	if err != nil {
		return false, err
	}
	clk := new(sim.Clock)
	pool, err := pmdk.Create(clk, mp, nil)
	if err != nil {
		return false, err
	}
	tx, err := pool.Begin(clk)
	if err != nil {
		return false, err
	}
	htID, err := pmdk.CreateHashtable(tx, 16)
	if err != nil {
		return false, err
	}
	root, _ := pool.Root()
	if err := tx.WriteU64(root, uint64(htID)); err != nil {
		return false, err
	}
	if err := tx.Commit(); err != nil {
		return false, err
	}
	ht, err := pmdk.OpenHashtable(clk, pool, htID)
	if err != nil {
		return false, err
	}
	if err := ht.Put(clk, []byte("stable"), []byte("old-stable")); err != nil {
		return false, err
	}
	if err := ht.Put(clk, []byte("victim"), []byte("old-victim")); err != nil {
		return false, err
	}

	dev.FailAfterPersists(k)
	err1 := ht.Put(clk, []byte("victim"), []byte("new-victim"))
	var err2 error
	if err1 == nil {
		err2 = ht.Put(clk, []byte("fresh"), []byte("new-fresh"))
	}
	completed = err1 == nil && err2 == nil
	for _, e := range []error{err1, err2} {
		if e != nil && !errors.Is(e, pmem.ErrFailed) {
			return completed, fmt.Errorf("unexpected workload error: %w", e)
		}
	}

	dev.Crash(mode, rng)

	// Structural pass first — the same checker the crash-point explorer runs.
	rep, err := fsck.Check(clk, mp)
	if err != nil {
		return completed, fmt.Errorf("fsck: %w", err)
	}
	if !rep.OK() {
		return completed, fmt.Errorf("fsck: %s", rep.Summary())
	}

	pool2, err := pmdk.Open(clk, mp)
	if err != nil {
		return completed, fmt.Errorf("recovery failed: %w", err)
	}
	ht2, err := pmdk.OpenHashtable(clk, pool2, htID)
	if err != nil {
		return completed, fmt.Errorf("reopening table failed: %w", err)
	}

	check := func(key string, allowed ...string) error {
		v, ok, err := ht2.Get(clk, []byte(key))
		if err != nil {
			return fmt.Errorf("Get(%s): %w", key, err)
		}
		for _, a := range allowed {
			if a == "" && !ok {
				return nil
			}
			if ok && string(v) == a {
				return nil
			}
		}
		return fmt.Errorf("Get(%s) = (%q, %v); allowed %q", key, v, ok, allowed)
	}
	if err := check("stable", "old-stable"); err != nil {
		return completed, err
	}
	if err := check("victim", "old-victim", "new-victim"); err != nil {
		return completed, err
	}
	if err := check("fresh", "", "new-fresh"); err != nil {
		return completed, err
	}
	if completed {
		if err := check("victim", "new-victim"); err != nil {
			return completed, fmt.Errorf("committed update lost: %w", err)
		}
		if err := check("fresh", "new-fresh"); err != nil {
			return completed, fmt.Errorf("committed insert lost: %w", err)
		}
	}
	if verbose {
		st := pool2.Stats()
		fmt.Fprintf(w, "  k=%-4d recovered=%d completed=%v\n", k, st.Recovered, completed)
	}
	return completed, nil
}
