// Command pmemfsck exercises pMEMCPY's crash-consistency machinery: it runs
// a transactional key-value workload against the emulated device, injects a
// power failure after every possible persist point, recovers the pool, and
// checks the recovered state against the set of states the undo-log protocol
// permits (atomicity: committed data intact, uncommitted data absent or
// fully rolled back).
//
// Examples:
//
//	pmemfsck                 # sweep all crash points, all adversary modes
//	pmemfsck -mode random -seed 7
//	pmemfsck -v              # report every crash point's outcome
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pmemcpy/internal/pmdk"
	"pmemcpy/internal/pmem"
	"pmemcpy/internal/sim"
)

func main() {
	var (
		mode    = flag.String("mode", "all", `crash adversary: "loseall", "keepall", "random", or "all"`)
		seed    = flag.Int64("seed", 1, "seed for the random adversary")
		verbose = flag.Bool("v", false, "report every crash point")
	)
	flag.Parse()

	modes := map[string][]pmem.CrashMode{
		"loseall": {pmem.CrashLoseAll},
		"keepall": {pmem.CrashKeepAll},
		"random":  {pmem.CrashRandom},
		"all":     {pmem.CrashLoseAll, pmem.CrashKeepAll, pmem.CrashRandom},
	}[*mode]
	if modes == nil {
		fmt.Fprintf(os.Stderr, "pmemfsck: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	total, failures := 0, 0
	for _, m := range modes {
		points, bad := sweep(m, *seed, *verbose)
		fmt.Printf("mode %-8v: %3d crash points checked, %d violations\n", modeName(m), points, bad)
		total += points
		failures += bad
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d of %d crash points violated consistency\n", failures, total)
		os.Exit(1)
	}
	fmt.Printf("OK: all %d crash points recovered to consistent states\n", total)
}

func modeName(m pmem.CrashMode) string {
	switch m {
	case pmem.CrashLoseAll:
		return "loseall"
	case pmem.CrashKeepAll:
		return "keepall"
	default:
		return "random"
	}
}

// sweep runs the update+insert workload, crashing after the k-th persist for
// every k until the workload completes without injection firing.
func sweep(mode pmem.CrashMode, seed int64, verbose bool) (points, violations int) {
	rng := rand.New(rand.NewSource(seed))
	for k := int64(0); ; k++ {
		points++
		completed, err := crashPoint(mode, k, rng, verbose)
		if err != nil {
			violations++
			fmt.Printf("  k=%d: VIOLATION: %v\n", k, err)
		}
		if completed {
			return points, violations
		}
		if k > 5000 {
			fmt.Println("  sweep did not terminate (workload never completes)")
			violations++
			return points, violations
		}
	}
}

// crashPoint builds a fresh pool with two committed keys, then (under
// injection) updates one and inserts another, crashes, recovers, and checks
// the permitted states.
func crashPoint(mode pmem.CrashMode, k int64, rng *rand.Rand, verbose bool) (completed bool, err error) {
	machine := sim.NewMachine(sim.DefaultConfig())
	machine.SetConcurrency(1)
	dev := pmem.New(machine, 16<<20, pmem.WithCrashTracking())
	mp, err := pmem.NewMapping(dev, 0, 16<<20, false)
	if err != nil {
		return false, err
	}
	clk := new(sim.Clock)
	pool, err := pmdk.Create(clk, mp, nil)
	if err != nil {
		return false, err
	}
	tx, err := pool.Begin(clk)
	if err != nil {
		return false, err
	}
	htID, err := pmdk.CreateHashtable(tx, 16)
	if err != nil {
		return false, err
	}
	root, _ := pool.Root()
	if err := tx.WriteU64(root, uint64(htID)); err != nil {
		return false, err
	}
	if err := tx.Commit(); err != nil {
		return false, err
	}
	ht, err := pmdk.OpenHashtable(clk, pool, htID)
	if err != nil {
		return false, err
	}
	if err := ht.Put(clk, []byte("stable"), []byte("old-stable")); err != nil {
		return false, err
	}
	if err := ht.Put(clk, []byte("victim"), []byte("old-victim")); err != nil {
		return false, err
	}

	dev.FailAfterPersists(k)
	err1 := ht.Put(clk, []byte("victim"), []byte("new-victim"))
	var err2 error
	if err1 == nil {
		err2 = ht.Put(clk, []byte("fresh"), []byte("new-fresh"))
	}
	completed = err1 == nil && err2 == nil
	for _, e := range []error{err1, err2} {
		if e != nil && !errors.Is(e, pmem.ErrFailed) {
			return completed, fmt.Errorf("unexpected workload error: %w", e)
		}
	}

	dev.Crash(mode, rng)
	pool2, err := pmdk.Open(clk, mp)
	if err != nil {
		return completed, fmt.Errorf("recovery failed: %w", err)
	}
	ht2, err := pmdk.OpenHashtable(clk, pool2, htID)
	if err != nil {
		return completed, fmt.Errorf("reopening table failed: %w", err)
	}

	check := func(key string, allowed ...string) error {
		v, ok, err := ht2.Get(clk, []byte(key))
		if err != nil {
			return fmt.Errorf("Get(%s): %w", key, err)
		}
		for _, a := range allowed {
			if a == "" && !ok {
				return nil
			}
			if ok && string(v) == a {
				return nil
			}
		}
		return fmt.Errorf("Get(%s) = (%q, %v); allowed %q", key, v, ok, allowed)
	}
	if err := check("stable", "old-stable"); err != nil {
		return completed, err
	}
	if err := check("victim", "old-victim", "new-victim"); err != nil {
		return completed, err
	}
	if err := check("fresh", "", "new-fresh"); err != nil {
		return completed, err
	}
	if completed {
		if err := check("victim", "new-victim"); err != nil {
			return completed, fmt.Errorf("committed update lost: %w", err)
		}
		if err := check("fresh", "new-fresh"); err != nil {
			return completed, fmt.Errorf("committed insert lost: %w", err)
		}
	}
	if verbose {
		st := pool2.Stats()
		fmt.Printf("  k=%-4d recovered=%d completed=%v\n", k, st.Recovered, completed)
	}
	return completed, nil
}
