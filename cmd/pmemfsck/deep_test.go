package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting it under -update.
// The -deep workload and the simulator are fully deterministic, so the whole
// report — block counts, bytes, and under -corrupt the damaged pool offsets —
// is pinned byte-for-byte.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestDeepCleanStoreExitsZero(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-deep"}, &out); code != 0 {
		t.Fatalf("exit %d on a clean store (want 0), output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "deep check clean") {
		t.Fatalf("output missing clean summary:\n%s", out.String())
	}
	golden(t, "deep_clean.golden", out.String())
}

// TestDeepCorruptStoreExitsTwo is the regression for silent-corruption
// detection: damaged stored bytes with untouched checksums must exit 2 and
// name every damaged block's id, block index, pool offset, and length.
func TestDeepCorruptStoreExitsTwo(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-deep", "-corrupt"}, &out); code != 2 {
		t.Fatalf("exit %d on a corrupt store (want 2), output:\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{
		`corrupt: id "rect1" block 0 at offset `,
		`corrupt: id "sim/label" value at offset `,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	golden(t, "deep_corrupt.golden", s)
}
