// Command leasevet is a small static checker for the zero-copy view API: a
// view returned by LoadView, LoadBlockView, or Array.View holds a lease that
// pins deferred block frees until Close, so a call whose result is discarded
// leaks the lease for the life of the process (the runtime finalizer only
// counts the leak, it does not release it). leasevet flags:
//
//   - a view-producing call used as a bare statement (result discarded), and
//   - a view-producing call whose view result is assigned to the blank
//     identifier.
//
// Usage: leasevet ./... (or explicit package directories). Exits 1 when any
// finding is reported. It is wired into `make leasecheck` next to go vet's
// copylocks pass, which catches the complementary misuse (copying a View by
// value).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// viewFuncs are the view-producing call names this checker recognizes. The
// match is syntactic (no type information): the name of the called function
// or method, after stripping any generic instantiation and selector base.
var viewFuncs = map[string]bool{
	"LoadView":      true,
	"LoadBlockView": true,
	"View":          true,
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, a := range args {
		if strings.HasSuffix(a, "/...") {
			root := strings.TrimSuffix(a, "/...")
			if root == "." || root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "results") {
						return filepath.SkipDir
					}
					dirs = append(dirs, path)
				}
				return nil
			})
			if err != nil {
				fatal(err)
			}
		} else {
			dirs = append(dirs, a)
		}
	}

	findings := 0
	fset := token.NewFileSet()
	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, dir, nil, 0)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			fatal(fmt.Errorf("%s: %w", dir, err))
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				findings += checkFile(fset, file)
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "leasevet: %d leaked view lease(s)\n", findings)
		os.Exit(1)
	}
}

func checkFile(fset *token.FileSet, file *ast.File) int {
	findings := 0
	report := func(pos token.Pos, call *ast.CallExpr, how string) {
		findings++
		fmt.Fprintf(os.Stderr, "%s: result of %s %s: the view's lease is never closed\n",
			fset.Position(pos), callName(call), how)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := viewCall(stmt.X); ok {
				report(stmt.Pos(), call, "discarded")
			}
		case *ast.AssignStmt:
			// One call on the RHS: its first result is the view. Multiple
			// RHS values pair one-to-one with LHS names.
			if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 0 {
				if call, ok := viewCall(stmt.Rhs[0]); ok {
					if id, isIdent := stmt.Lhs[0].(*ast.Ident); isIdent && id.Name == "_" {
						report(stmt.Pos(), call, "assigned to _")
					}
				}
			} else {
				for i, rhs := range stmt.Rhs {
					call, ok := viewCall(rhs)
					if !ok || i >= len(stmt.Lhs) {
						continue
					}
					if id, isIdent := stmt.Lhs[i].(*ast.Ident); isIdent && id.Name == "_" {
						report(stmt.Pos(), call, "assigned to _")
					}
				}
			}
		case *ast.GoStmt:
			if call, ok := viewCall(stmt.Call); ok {
				report(stmt.Pos(), call, "discarded (go statement)")
			}
		case *ast.DeferStmt:
			if call, ok := viewCall(stmt.Call); ok {
				report(stmt.Pos(), call, "discarded (defer statement)")
			}
		}
		return true
	})
	return findings
}

// viewCall reports whether e is a call of a view-producing function or
// method.
func viewCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	return call, viewFuncs[callName(call)]
}

// callName extracts the bare called name: the method or function identifier
// with any package/receiver selector and generic instantiation stripped.
func callName(call *ast.CallExpr) string {
	fn := call.Fun
	for {
		switch f := fn.(type) {
		case *ast.IndexExpr:
			fn = f.X
		case *ast.IndexListExpr:
			fn = f.X
		case *ast.SelectorExpr:
			return f.Sel.Name
		case *ast.Ident:
			return f.Name
		default:
			return ""
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leasevet:", err)
	os.Exit(1)
}
