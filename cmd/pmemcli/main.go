// Command pmemcli demonstrates and inspects a pMEMCPY store. Because the
// reproduction's PMEM device is an in-process emulation, pmemcli populates a
// store with a representative dataset and then walks it the way a pool
// inspector would: listing keys, dimensions, element types, block layout and
// allocator statistics, optionally hex-dumping a value.
//
// Examples:
//
//	pmemcli                      # hashtable layout, list keys + stats
//	pmemcli -layout hierarchy    # show the directory tree layout
//	pmemcli -dump rect0          # hexdump the start of a variable
//	pmemcli -codec raw           # store with serialization disabled
//	pmemcli -async -codec raw    # populate through the async group-commit queue
//	pmemcli -pools 4             # shard the namespace over 4 member pools
//	pmemcli stats                # observability metrics as Prometheus text
//	pmemcli stats -trace t.json  # additionally dump the operation trace
//	pmemcli scrub                # checksum-scrub every stored block
//	pmemcli scrub -corrupt       # ...after silently damaging one block
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pmemcpy"
	"pmemcpy/internal/obs"
	"pmemcpy/internal/sim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		runStats(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scrub" {
		runScrub(os.Args[2:])
		return
	}
	var (
		layoutName = flag.String("layout", "hashtable", `data layout: "hashtable" or "hierarchy"`)
		codec      = flag.String("codec", "", "serializer: bp4 (default), flat, cbin, raw")
		dump       = flag.String("dump", "", "hex-dump the first bytes of this id's data")
		ranks      = flag.Int("ranks", 4, "parallel ranks populating the store")
		parallel   = flag.Int("parallel", 0, "per-rank copy workers for large stores (<=1: serial)")
		readpar    = flag.Int("readparallel", 0, "per-rank gather workers for large loads (0: follow -parallel, 1: serial)")
		async      = flag.Bool("async", false, "populate through the asynchronous submission queue (group commit)")
		window     = flag.Int("window", 8, "async coalesce window (submissions per batch), with -async")
		pools      = flag.Int("pools", 1, "shard the namespace over this many member pools (one PMEM device each)")
	)
	flag.Parse()

	layout := pmemcpy.LayoutHashtable
	if *layoutName == "hierarchy" {
		layout = pmemcpy.LayoutHierarchy
	} else if *layoutName != "hashtable" {
		fatal(fmt.Errorf("unknown layout %q", *layoutName))
	}

	n := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 256<<20, pmemcpy.WithPMEMPools(*pools))
	opts := []pmemcpy.MmapOption{
		pmemcpy.WithLayout(layout),
		pmemcpy.WithCodec(*codec),
		pmemcpy.WithParallelism(*parallel),
		pmemcpy.WithReadParallelism(*readpar),
		pmemcpy.WithPools(*pools),
	}
	if *async {
		opts = append(opts, pmemcpy.WithAsync(), pmemcpy.WithCoalesceWindow(*window))
	}

	// Populate: a small 3-D decomposition plus scalars, in parallel. With
	// -async the rectangle writes queue through the submission pipeline and
	// Munmap drains them; the counters printed afterwards show the batching.
	var asyncSnap pmemcpy.MetricsSnapshot
	_, err := pmemcpy.Run(n, *ranks, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/demo.pool", opts...)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := pmemcpy.Store(p, "sim/timestep", int64(42)); err != nil {
				return err
			}
			if err := pmemcpy.StoreString(p, "sim/label", "demo dataset"); err != nil {
				return err
			}
		}
		for v := 0; v < 3; v++ {
			name := fmt.Sprintf("rect%d", v)
			gdim := uint64(*ranks) * 64
			if err := pmemcpy.Alloc[float64](p, name, gdim); err != nil {
				return err
			}
			data := make([]float64, 64)
			off := uint64(c.Rank()) * 64
			for i := range data {
				data[i] = float64(v)*1e6 + float64(off) + float64(i)
			}
			if *async {
				pmemcpy.StoreSubAsync(p, name, data, []uint64{off}, []uint64{64})
			} else if err := pmemcpy.StoreSub(p, name, data, []uint64{off}, []uint64{64}); err != nil {
				return err
			}
		}
		if *async {
			if err := p.Flush(context.Background()); err != nil {
				return err
			}
			if c.Rank() == 0 {
				asyncSnap = p.Metrics()
			}
		}
		return p.Munmap()
	})
	if err != nil {
		fatal(err)
	}
	if *async {
		fmt.Printf("ASYNC PIPELINE (window=%d): submitted=%d batches=%d publishes=%d coalesced=%d backpressure=%d\n\n",
			*window,
			asyncSnap.Get("pmemcpy_async_submitted_total"),
			asyncSnap.Get("pmemcpy_async_batches_total"),
			asyncSnap.Get("pmemcpy_async_publishes_total"),
			asyncSnap.Get("pmemcpy_async_coalesced_total"),
			asyncSnap.Get("pmemcpy_async_backpressure_total"))
	}

	// Inspect, single rank.
	_, err = pmemcpy.Run(n, 1, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/demo.pool", opts...)
		if err != nil {
			return err
		}
		keys, err := p.Keys()
		if err != nil {
			return err
		}
		sort.Strings(keys)
		fmt.Printf("STORE /demo.pool  layout=%s codec=%s  (%d keys)\n\n", *layoutName, p.CodecName(), len(keys))
		fmt.Printf("%-24s %-10s %s\n", "KEY", "KIND", "DETAIL")
		fmt.Println(strings.Repeat("-", 60))
		for _, k := range keys {
			if strings.HasSuffix(k, pmemcpy.DimsSuffix) {
				continue // shown inline with the owning variable
			}
			dims, derr := pmemcpy.LoadDims(p, k)
			if derr == nil {
				detail := fmt.Sprintf("dims=%v (+%s companion)", dims, pmemcpy.DimsSuffix)
				if *pools > 1 {
					spread := map[int]bool{}
					if blocks, berr := p.BlockStatsOf(k); berr == nil {
						for _, b := range blocks {
							spread[b.Pool] = true
						}
					}
					detail += fmt.Sprintf(" home=pool%d blocks-on=%d/%d pools",
						p.HomePool(k), len(spread), p.Pools())
				}
				if layout == pmemcpy.LayoutHashtable {
					// First MinMax per id builds the DRAM block index (a
					// cache miss); the hit counter below shows repeats are
					// served from DRAM.
					if mn, mx, merr := p.MinMax(k); merr == nil {
						detail += fmt.Sprintf(" range=[%g, %g]", mn, mx)
					}
				}
				fmt.Printf("%-24s %-10s %s\n", k, "array", detail)
				continue
			}
			if s, serr := pmemcpy.LoadString(p, k); serr == nil {
				fmt.Printf("%-24s %-10s %q\n", k, "string", s)
				continue
			}
			fmt.Printf("%-24s %-10s\n", k, "scalar")
		}

		if layout == pmemcpy.LayoutHashtable {
			// Repeat the range queries: every id's index is now resident, so
			// these are pure DRAM cache hits (visible in READ ENGINE below).
			for _, k := range keys {
				if strings.HasSuffix(k, pmemcpy.DimsSuffix) {
					continue
				}
				if _, derr := pmemcpy.LoadDims(p, k); derr == nil {
					p.MinMax(k)
				}
			}
		}

		st, err := p.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("\nPOOL STATS: pools=%d keys=%d heap-used=%d B allocs=%d frees=%d txs=%d aborts=%d recovered=%d\n",
			p.Pools(), st.Keys, st.HeapUsed, st.Allocs, st.Frees, st.Transactions, st.Aborts, st.Recovered)
		fmt.Printf("CONCURRENCY: arenas=%d arena-steals=%d parallelism=%d parallel-stores=%d parallel-blocks=%d\n",
			st.Arenas, st.ArenaSteals, st.Parallelism, st.ParallelStores, st.ParallelBlocks)
		fmt.Printf("READ ENGINE: read-parallelism=%d parallel-reads=%d parallel-read-jobs=%d\n",
			st.ReadParallelism, st.ParallelReads, st.ParallelReadJobs)
		fmt.Printf("BLOCK-INDEX CACHE: hits=%d misses=%d invalidations=%d\n",
			st.CacheHits, st.CacheMisses, st.CacheInvalidations)

		if *dump != "" {
			vals := make([]float64, 8)
			if err := pmemcpy.LoadSub(p, *dump, vals, []uint64{0}, []uint64{8}); err != nil {
				return fmt.Errorf("dump %q: %w", *dump, err)
			}
			fmt.Printf("\nDUMP %s[0:8]: %v\n", *dump, vals)
		}
		return p.Munmap()
	})
	if err != nil {
		fatal(err)
	}

	if layout == pmemcpy.LayoutHierarchy {
		fmt.Println("\nFILESYSTEM TREE (hierarchical layout):")
		printTree(n, "/demo.pool", 1)
	}
}

func printTree(n *pmemcpy.Node, dir string, depth int) {
	clk := newClock()
	ents, err := n.FS.ReadDir(clk, dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		fmt.Printf("%s%s", strings.Repeat("  ", depth), e.Name)
		if e.IsDir {
			fmt.Println("/")
			printTree(n, dir+"/"+e.Name, depth+1)
		} else {
			fmt.Printf("  (%d bytes)\n", e.Size)
		}
	}
}

func newClock() *sim.Clock { return new(sim.Clock) }

// runStats is the "pmemcli stats" subcommand: it populates the demo store
// with full instrumentation enabled and prints the observability snapshot as
// Prometheus-style exposition text. With -trace / -chrome the recorded
// operation spans are additionally written as JSON (or a chrome://tracing
// file).
func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	var (
		codec    = fs.String("codec", "", "serializer: bp4 (default), flat, cbin, raw")
		ranks    = fs.Int("ranks", 4, "parallel ranks populating the store")
		parallel = fs.Int("parallel", 0, "per-rank copy workers for large stores (<=1: serial)")
		sampling = fs.Int("sampling", 1, "record every k-th histogram observation (<=1: all)")
		tracePth = fs.String("trace", "", "write the operation trace as JSON to this file")
		chromePt = fs.String("chrome", "", "write the operation trace in chrome://tracing format to this file")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	n := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 256<<20)
	opts := []pmemcpy.MmapOption{
		pmemcpy.WithCodec(*codec),
		pmemcpy.WithParallelism(*parallel),
		pmemcpy.WithMetrics(),
		pmemcpy.WithMetricsSampling(*sampling),
		pmemcpy.WithTracing(),
	}

	var snap pmemcpy.MetricsSnapshot
	var spans []pmemcpy.Span
	_, err := pmemcpy.Run(n, *ranks, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/demo.pool", opts...)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := pmemcpy.Store(p, "sim/timestep", int64(42)); err != nil {
				return err
			}
		}
		for v := 0; v < 3; v++ {
			name := fmt.Sprintf("rect%d", v)
			gdim := uint64(*ranks) * 64
			if err := pmemcpy.Alloc[float64](p, name, gdim); err != nil {
				return err
			}
			data := make([]float64, 64)
			off := uint64(c.Rank()) * 64
			for i := range data {
				data[i] = float64(v)*1e6 + float64(off) + float64(i)
			}
			if err := pmemcpy.StoreSub(p, name, data, []uint64{off}, []uint64{64}); err != nil {
				return err
			}
			dst := make([]float64, 64)
			if err := pmemcpy.LoadSub(p, name, dst, []uint64{off}, []uint64{64}); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			// Munmap is a barrier, so every rank's operations have landed by
			// the time rank 0 snapshots — but snapshot before it returns so
			// the handle is still live.
			defer func() {
				snap = p.Metrics()
				spans = p.TraceSpans()
			}()
		}
		return p.Munmap()
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# pmemcli stats: /demo.pool ranks=%d parallel=%d\n", *ranks, *parallel)
	if err := snap.WriteProm(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\n# trace: %d root spans recorded\n", len(spans))
	if *tracePth != "" {
		if err := writeTrace(*tracePth, spans, obs.WriteTraceJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("# trace JSON written to %s\n", *tracePth)
	}
	if *chromePt != "" {
		if err := writeTrace(*chromePt, spans, obs.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("# chrome trace written to %s (load via chrome://tracing)\n", *chromePt)
	}
}

func writeTrace(path string, spans []pmemcpy.Span, render func(io.Writer, []pmemcpy.Span) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmemcli:", err)
	os.Exit(1)
}
