package main

import (
	"context"
	"errors"
	"flag"
	"fmt"

	"pmemcpy"
)

// runScrub is the "pmemcli scrub" subcommand: it populates the demo store,
// optionally injects silent corruption (damaged bytes, untouched checksums),
// runs a rate-limited scrub pass, and shows the quarantine doing its job —
// reads of a quarantined block fail fast with ErrCorrupt instead of
// returning garbage.
func runScrub(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	var (
		ranks   = fs.Int("ranks", 4, "parallel ranks populating the store")
		corrupt = fs.Bool("corrupt", false, "silently damage one stored block before scrubbing")
		rate    = fs.Int64("rate", 0, "scrub rate limit in bytes per virtual second (0: unpaced)")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	n := pmemcpy.NewNode(pmemcpy.DefaultConfig(), 256<<20)
	opts := []pmemcpy.MmapOption{pmemcpy.WithScrubber(*rate)}

	// Populate: the same demo dataset the inspector uses.
	_, err := pmemcpy.Run(n, *ranks, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/demo.pool", opts...)
		if err != nil {
			return err
		}
		for v := 0; v < 3; v++ {
			name := fmt.Sprintf("rect%d", v)
			gdim := uint64(*ranks) * 64
			if err := pmemcpy.Alloc[float64](p, name, gdim); err != nil {
				return err
			}
			data := make([]float64, 64)
			off := uint64(c.Rank()) * 64
			for i := range data {
				data[i] = float64(v)*1e6 + float64(off) + float64(i)
			}
			if err := pmemcpy.StoreSub(p, name, data, []uint64{off}, []uint64{64}); err != nil {
				return err
			}
		}
		return p.Munmap()
	})
	if err != nil {
		fatal(err)
	}

	_, err = pmemcpy.Run(n, 1, func(c *pmemcpy.Comm) error {
		p, err := pmemcpy.Mmap(c, n, "/demo.pool", opts...)
		if err != nil {
			return err
		}
		if *corrupt {
			off, nbytes, err := p.InjectCorruption("rect1", 0, 100, 1, 0x01)
			if err != nil {
				return err
			}
			fmt.Printf("injected: flipped 1 bit in %d byte(s) of \"rect1\" block 0 at pool offset %d\n", nbytes, off)
		}
		rep, err := p.Scrub(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", rep)
		if q := p.Quarantined(); len(q) > 0 {
			fmt.Printf("quarantined pool offsets: %v\n", q)
			dst := make([]float64, 64)
			err := pmemcpy.LoadSub(p, "rect1", dst, []uint64{0}, []uint64{64})
			switch {
			case errors.Is(err, pmemcpy.ErrCorrupt):
				fmt.Printf("read of \"rect1\" fails fast: %v\n", err)
			case err != nil:
				return err
			default:
				return fmt.Errorf("read of quarantined block unexpectedly succeeded")
			}
		}
		return p.Munmap()
	})
	if err != nil {
		fatal(err)
	}
}
