// Command apicmp regenerates the paper's Section 3 API-complexity
// comparison: the same task — every process writes 100 doubles to
// non-overlapping offsets of a shared 1-D array — expressed against HDF5
// (Figure 4), ADIOS (Figure 5) and pMEMCPY (Figure 3), plus this
// repository's Go rendering of the pMEMCPY program. For each program it
// counts non-blank source lines and lexical tokens and reports the reduction
// relative to HDF5, next to the paper's published counts (42 lines/253
// tokens for HDF5, 24/164 for ADIOS, 16/132 for pMEMCPY).
package main

import (
	"fmt"
	"strings"
	"unicode"
)

// The three programs exactly as printed in the paper (Figures 3-5).

const hdf5C = `#include <hdf5.h>
int main (int argc, char **argv) {
  int nprocs, rank;
  MPI_Init(&argc, &argv);
  MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  hid_t file_id, dset_id;
  hid_t filespace, memspace;
  hsize_t count = 100;
  hsize_t offset = rank*100;
  hsize_t dimsf = nprocs*100;
  hid_t plist_id;
  herr_t status;
  char *path = argv[1];
  int data[100];
  plist_id = H5Pcreate(H5P_FILE_ACCESS);
  H5Pset_fapl_mpio(plist_id,
    MPI_COMM_WORLD, MPI_INFO_NULL);
  file_id = H5Fcreate(path,
    H5F_ACC_TRUNC, H5P_DEFAULT, plist_id);
  H5Pclose(plist_id);
  filespace = H5Screate_simple(1, &dimsf, NULL);
  dset_id = H5Dcreate(file_id, "dataset",
    H5T_NATIVE_INT, filespace, H5P_DEFAULT,
    H5P_DEFAULT, H5P_DEFAULT);
  H5Sclose(filespace);
  memspace = H5Screate_simple(1, &count, NULL);
  filespace = H5Dget_space(dset_id);
  H5Sselect_hyperslab(filespace,
    H5S_SELECT_SET, &offset,
    NULL, &count, NULL);
  plist_id = H5Pcreate(H5P_DATASET_XFER);
  status = H5Dwrite(dset_id, H5T_NATIVE_INT,
    memspace, filespace, plist_id, data);
  H5Dclose(dset_id);
  H5Sclose(filespace);
  H5Sclose(memspace);
  H5Pclose(plist_id);
  H5Fclose(file_id);
  MPI_Finalize();
  return 0;
}`

const adiosC = `#include <adios.h>
int main(int argc, char **argv) {
    int rank, nprocs;
    MPI_Init(&argc, &argv);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    char *path = argv[1];
    char *config = argv[2];
    double data[100];
    int64_t adios_handle;
    size_t count = 100;
    size_t offset = 100*rank;
    size_t dimsf = 100*nprocs;
    adios_init(config, MPI_COMM_WORLD);
    adios_open (&adios_handle, "dataset",
      path, "w", MPI_COMM_WORLD);
    adios_write (adios_handle, "count", &count);
    adios_write (adios_handle, "dimsf", &dimsf);
    adios_write (adios_handle, "offset", &offset);
    adios_write (adios_handle, "A", data);
    adios_close (adios_handle);
    adios_finalize (rank);
    MPI_Finalize ();
    return 0;
}`

const pmemcpyCpp = `#include <pmemcpy/pmemcpy.h>
int main(int argc, char** argv) {
    int rank, nprocs;
    MPI_Init(&argc,&argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
    pmemcpy::PMEM pmem;
    size_t count = 100;
    size_t off = 100*rank;
    size_t dimsf = 100*nprocs;
    char *path = argv[1];
    double data[100] = {0};
    pmem.mmap(path, MPI_COMM_WORLD);
    pmem.alloc<double>("A", 1, &dimsf);
    pmem.store<double>("A", data, 1, &off, &count);
    MPI_Finalize();
}`

// The same program against this repository's public Go API. Mmap is variadic:
// configuration is functional options, and the default needs none.
const pmemcpyGo = `func write(c *pmemcpy.Comm, n *pmemcpy.Node, path string) error {
	count := uint64(100)
	off := count * uint64(c.Rank())
	dimsf := count * uint64(c.Size())
	data := make([]float64, count)
	pmem, err := pmemcpy.Mmap(c, n, path)
	if err != nil {
		return err
	}
	pmemcpy.Alloc[float64](pmem, "A", dimsf)
	pmemcpy.StoreSub(pmem, "A", data, []uint64{off}, []uint64{count})
	return pmem.Munmap()
}`

// The same program against the v2 typed-handle surface (Array[T] plus the
// variadic Mmap): binding (handle, id, type) once removes the repeated
// arguments the free functions carry.
const pmemcpyGoV2 = `func write(c *pmemcpy.Comm, n *pmemcpy.Node, path string) error {
	count := uint64(100)
	off := count * uint64(c.Rank())
	data := make([]float64, count)
	pmem, err := pmemcpy.Mmap(c, n, path)
	if err != nil {
		return err
	}
	a, _ := pmemcpy.CreateArray[float64](pmem, "A", count*uint64(c.Size()))
	a.StoreSub(data, []uint64{off}, []uint64{count})
	return pmem.Munmap()
}`

// The asynchronous form: one functional option turns the same program into a
// pipelined one — StoreSubAsync queues the write and Munmap drains the queue,
// so group commit costs zero additional lines over the synchronous version.
const pmemcpyGoAsync = `func write(c *pmemcpy.Comm, n *pmemcpy.Node, path string) error {
	count := uint64(100)
	off := count * uint64(c.Rank())
	data := make([]float64, count)
	pmem, err := pmemcpy.Mmap(c, n, path, pmemcpy.WithAsync())
	if err != nil {
		return err
	}
	a, _ := pmemcpy.CreateArray[float64](pmem, "A", count*uint64(c.Size()))
	a.StoreSubAsync(data, []uint64{off}, []uint64{count})
	return pmem.Munmap()
}`

// The read side of the same program through the copying v1 surface: the
// caller sizes and owns the destination buffer, and every byte is streamed
// out of PMEM into it.
const pmemcpyGoRead = `func read(c *pmemcpy.Comm, n *pmemcpy.Node, path string) error {
	count := uint64(100)
	off := count * uint64(c.Rank())
	data := make([]float64, count)
	pmem, err := pmemcpy.Mmap(c, n, path)
	if err != nil {
		return err
	}
	pmemcpy.LoadSub(pmem, "A", data, []uint64{off}, []uint64{count})
	consume(data)
	return pmem.Munmap()
}`

// The zero-copy v2 read: Array.View leases the stored bytes in place — no
// destination buffer, no transfer — and Close releases the lease. The only
// added line over the copying read is the deferred Close that scopes the
// lease.
const pmemcpyGoView = `func read(c *pmemcpy.Comm, n *pmemcpy.Node, path string) error {
	count := uint64(100)
	off := count * uint64(c.Rank())
	pmem, err := pmemcpy.Mmap(c, n, path, pmemcpy.WithCodec("raw"))
	if err != nil {
		return err
	}
	a, _ := pmemcpy.OpenArray[float64](pmem, "A")
	v, _ := a.View([]uint64{off}, []uint64{count})
	defer v.Close()
	data, _ := v.Data()
	consume(data)
	return pmem.Munmap()
}`

func main() {
	type row struct {
		name         string
		src          string
		paperLines   int
		paperTokens  int
		publishedRef string
	}
	rows := []row{
		{"HDF5 (Fig 4, C)", hdf5C, 42, 253, "paper"},
		{"ADIOS (Fig 5, C)", adiosC, 24, 164, "paper"},
		{"pMEMCPY (Fig 3, C++)", pmemcpyCpp, 16, 132, "paper"},
		{"pMEMCPY (this repo, Go)", pmemcpyGo, 0, 0, "-"},
		{"pMEMCPY (Go, v2 Array)", pmemcpyGoV2, 0, 0, "-"},
		{"pMEMCPY (Go, v2 async)", pmemcpyGoAsync, 0, 0, "-"},
		{"pMEMCPY (Go, v1 read)", pmemcpyGoRead, 0, 0, "-"},
		{"pMEMCPY (Go, v2 view)", pmemcpyGoView, 0, 0, "-"},
	}

	fmt.Println("SECTION 3 API COMPLEXITY — write 100 doubles/process to a shared 1-D array")
	fmt.Printf("%-26s %8s %8s %14s %14s %12s\n",
		"PROGRAM", "LINES", "TOKENS", "PAPER LINES", "PAPER TOKENS", "VS HDF5")
	fmt.Println(strings.Repeat("-", 88))

	baseTokens := 0
	for i, r := range rows {
		lines := countLines(r.src)
		tokens := countTokens(r.src)
		if i == 0 {
			baseTokens = tokens
		}
		reduction := 100 * (1 - float64(tokens)/float64(baseTokens))
		paperL, paperT := "-", "-"
		if r.paperLines > 0 {
			paperL = fmt.Sprintf("%d", r.paperLines)
			paperT = fmt.Sprintf("%d", r.paperTokens)
		}
		fmt.Printf("%-26s %8d %8d %14s %14s %11.0f%%\n",
			r.name, lines, tokens, paperL, paperT, reduction)
	}
	fmt.Println("\n(The paper reports a 92% token reduction for pMEMCPY vs HDF5 by its own")
	fmt.Println("counting; by the lexical count used here the reduction is ~50%, and the")
	fmt.Println("Go version lands in the same band as the paper's C++ pMEMCPY program.)")
}

// countLines counts non-blank lines.
func countLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// countTokens lexes src into identifier/number/string/operator tokens, the
// usual programming-effort proxy.
func countTokens(src string) int {
	tokens := 0
	i := 0
	rs := []rune(src)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r) || r == '_':
			tokens++
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '_') {
				i++
			}
		case unicode.IsDigit(r):
			tokens++
			for i < len(rs) && (unicode.IsDigit(rs[i]) || rs[i] == '.' || rs[i] == 'x' ||
				(rs[i] >= 'a' && rs[i] <= 'f') || (rs[i] >= 'A' && rs[i] <= 'F')) {
				i++
			}
		case r == '"' || r == '\'':
			quote := r
			tokens++
			i++
			for i < len(rs) && rs[i] != quote {
				if rs[i] == '\\' {
					i++
				}
				i++
			}
			i++
		default:
			// Operators and punctuation: one token per character group of
			// common multi-char operators.
			tokens++
			if i+1 < len(rs) {
				two := string(rs[i : i+2])
				switch two {
				case "->", "::", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", ":=", "++", "--":
					i++
				}
			}
			i++
		}
	}
	return tokens
}
