// Command commitvet is a small static checker for the unified write-path
// commit engine (internal/core/writeplan.go): pool transactions over data
// blocks — pool.Begin(clk), pool.Alloc(tx, size), pool.Free(tx, id) — may be
// taken ONLY by the commit engine, so the alloc-in-tx ordering, persist
// points, and crash-consistency windows stay auditable in one place.
// commitvet flags any such call in a non-test internal/core file other than
// writeplan.go.
//
// The match is syntactic (no type information): Begin with exactly one
// argument, and Alloc/Free with exactly two (the public three-argument
// PMEM.Alloc dims declaration does not match). The pool-format bootstraps in
// core.go run before any data exists; they opt out with a `//commitvet:ignore`
// comment on the call's line or the line above.
//
// Usage: commitvet ./internal/core (or any package directories / ./...
// patterns). Exits 1 when any finding is reported. Wired into
// `make commitvet` and the verify pipeline.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// engineFiles are the files allowed to take pool transactions: the commit
// engine itself.
var engineFiles = map[string]bool{
	"writeplan.go": true,
}

// txCalls maps the recognized transactional call names to the exact argument
// count that marks the pool-transaction form.
var txCalls = map[string]int{
	"Begin": 1, // pool.Begin(clk)
	"Alloc": 2, // pool.Alloc(tx, size)
	"Free":  2, // pool.Free(tx, id)
}

const ignoreDirective = "//commitvet:ignore"

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./internal/core"}
	}
	var dirs []string
	for _, a := range args {
		if strings.HasSuffix(a, "/...") {
			root := strings.TrimSuffix(a, "/...")
			if root == "." || root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "results") {
						return filepath.SkipDir
					}
					dirs = append(dirs, path)
				}
				return nil
			})
			if err != nil {
				fatal(err)
			}
		} else {
			dirs = append(dirs, a)
		}
	}

	findings := 0
	fset := token.NewFileSet()
	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			fatal(fmt.Errorf("%s: %w", dir, err))
		}
		for _, pkg := range pkgs {
			for name, file := range pkg.Files {
				base := filepath.Base(name)
				if strings.HasSuffix(base, "_test.go") || engineFiles[base] {
					continue
				}
				findings += checkFile(fset, file)
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "commitvet: %d pool transaction(s) outside the commit engine\n", findings)
		os.Exit(1)
	}
}

func checkFile(fset *token.FileSet, file *ast.File) int {
	// Lines carrying (or preceding) an ignore directive exempt their calls:
	// the pool-format bootstraps in core.go legitimately transact before any
	// data exists.
	ignored := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), ignoreDirective) {
				line := fset.Position(c.Pos()).Line
				ignored[line] = true
				ignored[line+1] = true
			}
		}
	}
	findings := 0
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := callName(call)
		want, isTx := txCalls[name]
		if !isTx || len(call.Args) != want {
			return true
		}
		// Only method calls on a pool-like receiver count; bare identifiers
		// (local helpers named Begin/Alloc/Free) are not the pmdk pool API.
		if _, isSel := call.Fun.(*ast.SelectorExpr); !isSel {
			return true
		}
		if ignored[fset.Position(call.Pos()).Line] {
			return true
		}
		findings++
		fmt.Fprintf(os.Stderr, "%s: pool.%s outside the commit engine — route this write through writeplan.go\n",
			fset.Position(call.Pos()), name)
		return true
	})
	return findings
}

// callName extracts the bare called name: the method or function identifier
// with any package/receiver selector and generic instantiation stripped.
func callName(call *ast.CallExpr) string {
	fn := call.Fun
	for {
		switch f := fn.(type) {
		case *ast.IndexExpr:
			fn = f.X
		case *ast.IndexListExpr:
			fn = f.X
		case *ast.SelectorExpr:
			return f.Sel.Name
		case *ast.Ident:
			return f.Name
		default:
			return ""
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commitvet:", err)
	os.Exit(1)
}
