package main

import (
	"fmt"
	"strings"
	"time"

	"pmemcpy/internal/core"
	"pmemcpy/internal/harness"
	"pmemcpy/internal/mpi"
	"pmemcpy/internal/node"
	"pmemcpy/internal/pio"
	"pmemcpy/internal/serial"
	"pmemcpy/internal/sim"
)

// poolsBandwidthTarget is the E17 gate: striping one namespace over 4 member
// pools — each with its own device, allocator, transaction lanes, and
// bandwidth ports — must deliver at least this aggregate large-store speedup
// over the single-pool store. The multi-pool layer exists to turn device-level
// parallelism into namespace bandwidth; if 4 devices cannot buy 1.5x, the
// striping has regressed into routing overhead.
const poolsBandwidthTarget = 1.5

// runPoolsCase stores one large per-rank array (raw codec, par copy workers)
// on an npools-member namespace, times the store and a full verified
// read-back (virtual time, max over ranks), and returns both phases.
func runPoolsCase(cfg sim.Config, ranks, npools, par int, perRank int64) (write, read time.Duration, err error) {
	devSize := int64(ranks)*perRank*3/int64(npools) + (64 << 20)
	n := node.New(cfg, devSize, node.WithPMEMPools(npools))
	n.Machine.SetConcurrency(ranks)
	_, err = mpi.Run(n.Machine, ranks, func(c *mpi.Comm) error {
		p, err := core.Mmap(c, n, "/e17.pool",
			core.WithCodec("raw"),
			core.WithParallelism(par),
			core.WithReadParallelism(par),
			core.WithPools(npools))
		if err != nil {
			return err
		}
		id := fmt.Sprintf("rank%d", c.Rank())
		if err := p.Alloc(id, serial.Uint8, []uint64{uint64(perRank)}); err != nil {
			return err
		}
		buf := make([]byte, perRank)
		for i := range buf {
			buf[i] = byte(c.Rank() + i)
		}
		t0 := c.Clock().Now()
		if err := p.StoreBlock(id, []uint64{0}, []uint64{uint64(perRank)}, buf); err != nil {
			return err
		}
		wdt := c.Clock().Now() - t0
		dst := make([]byte, perRank)
		t1 := c.Clock().Now()
		if err := p.LoadBlock(id, []uint64{0}, []uint64{uint64(perRank)}, dst); err != nil {
			return err
		}
		rdt := c.Clock().Now() - t1
		for i := range dst {
			if dst[i] != buf[i] {
				return fmt.Errorf("read-back mismatch at byte %d", i)
			}
		}
		wmx, err := c.AllreduceU64(uint64(wdt), mpi.OpMax)
		if err != nil {
			return err
		}
		rmx, err := c.AllreduceU64(uint64(rdt), mpi.OpMax)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			write = time.Duration(wmx)
			read = time.Duration(rmx)
		}
		return p.Munmap()
	})
	return write, read, err
}

// runPoolsAblation is E17: the multi-pool striping experiment. Each member
// pool sits on its own emulated device with dedicated bandwidth ports (one
// DIMM set per pool), so a striped store's per-pool shard groups drain in
// parallel and the virtual clock advances by the slowest member, not the sum.
// The sweep holds the workload fixed (large raw-codec stores, a deep worker
// pool per rank) and varies only the member count; the single-pool row is the
// exact pre-existing store, so the ratio is the layer's contribution.
func runPoolsAblation(rankCounts []int, base harness.Params) ([]harness.Result, error) {
	const (
		ranks   = 4
		par     = 16
		perRank = int64(16 << 20)
	)
	poolCounts := []int{1, 2, 4, 8}

	var all []harness.Result
	totalBytes := int64(ranks) * perRank
	fmt.Printf("E17 — MULTI-POOL STRIPED NAMESPACE (virtual time, %d ranks x %d MB, raw codec, %d workers/rank):\n",
		ranks, perRank>>20, par)
	fmt.Printf("%-8s %12s %12s %14s %10s\n", "POOLS", "WRITE", "READ", "AGG WRITE BW", "SPEEDUP")
	fmt.Println(strings.Repeat("-", 62))
	var baseWrite time.Duration
	var gateErr error
	speedupAt := map[int]float64{}
	for _, npools := range poolCounts {
		write, read, err := runPoolsCase(base.Config, ranks, npools, par, perRank)
		if err != nil {
			return all, fmt.Errorf("pools ablation pools=%d: %w", npools, err)
		}
		if npools == 1 {
			baseWrite = write
		}
		speedup := float64(baseWrite) / float64(write)
		speedupAt[npools] = speedup
		// Bandwidth over stored (physical) bytes and virtual seconds: absolute
		// values share the profile scale, so ratios between rows are exact.
		bw := float64(totalBytes) / write.Seconds() / 1e9
		fmt.Printf("%-8d %11.3fs %11.3fs %11.2f GB/s %9.2fx\n",
			npools, write.Seconds(), read.Seconds(), bw, speedup)
		all = append(all, harness.Result{
			Library: fmt.Sprintf("pools=%d", npools),
			Ranks:   ranks,
			Bytes:   totalBytes,
			Write:   write,
			Read:    read,
		})
	}
	if s := speedupAt[4]; s < poolsBandwidthTarget {
		gateErr = fmt.Errorf("pools ablation: 4-pool aggregate write speedup %.2fx below the %.1fx target", s, poolsBandwidthTarget)
	}

	// Harness parity: the same striping through the pio surface — Params.Pools
	// applies pio.Poolable, the node carries one device per member — with
	// every byte verified on read-back.
	p := base
	p.Verify = true
	p.Pools = 4
	p.Parallelism = par
	// Only the codec is baked into the literal; the pool and worker counts
	// arrive through Params via pio.Configurable, which the named wrapper
	// forwards — the configuration can no longer be silently swallowed the
	// way the old per-interface probes were.
	libs := []pio.Library{named{core.Library{Codec: "raw"}, "harness-pools4"}}
	res, err := harness.Sweep(libs, rankCounts[:1], p)
	if err != nil {
		return all, fmt.Errorf("pools ablation harness parity: %w", err)
	}
	all = append(all, res...)
	fmt.Printf("\nharness parity (pio surface, verified read-back): %s\n", res[0])
	if gateErr != nil {
		return all, gateErr
	}
	fmt.Printf("verdict: multi-pool gate passed (>= %.1fx aggregate write bandwidth at 4 pools)\n\n", poolsBandwidthTarget)
	return all, nil
}
