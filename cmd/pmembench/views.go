package main

import (
	"fmt"
	"strings"
	"time"

	"pmemcpy/internal/core"
	"pmemcpy/internal/harness"
	"pmemcpy/internal/mpi"
	"pmemcpy/internal/node"
	"pmemcpy/internal/serial"
	"pmemcpy/internal/sim"
)

// viewsSpeedupTarget is the E18 gate: for single-block reads of at least
// viewsGateSize under the identity codec, opening a zero-copy view must be at
// least this much faster than the copying load. The view path exists to
// eliminate the read-bandwidth charge entirely — a leased view moves metadata,
// not bytes — so if aliasing a stored block cannot buy 1.5x over streaming it
// through memcpy, the lease bookkeeping has eaten the point of the layer.
const (
	viewsSpeedupTarget = 1.5
	viewsGateSize      = int64(1 << 20)
)

// viewsCell is one (variant, size) measurement of the E18 sweep.
type viewsCell struct {
	copyT    time.Duration
	viewT    time.Duration
	zeroCopy int64
	fallback int64
}

// runViewsCase stores one size-byte block per rank (identity or bp4 codec)
// and times reps full reads of it through the copying path and through
// LoadBlockView (open, touch, close), virtual time, max over ranks.
func runViewsCase(cfg sim.Config, ranks int, codec string, size int64, reps int) (viewsCell, error) {
	devSize := int64(ranks)*size*3 + (64 << 20)
	n := node.New(cfg, devSize)
	n.Machine.SetConcurrency(ranks)
	var cell viewsCell
	_, err := mpi.Run(n.Machine, ranks, func(c *mpi.Comm) error {
		p, err := core.Mmap(c, n, "/e18.pool", core.WithCodec(codec))
		if err != nil {
			return err
		}
		id := fmt.Sprintf("rank%d", c.Rank())
		if err := p.Alloc(id, serial.Uint8, []uint64{uint64(size)}); err != nil {
			return err
		}
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(c.Rank() + i)
		}
		if err := p.StoreBlock(id, []uint64{0}, []uint64{uint64(size)}, buf); err != nil {
			return err
		}

		dst := make([]byte, size)
		t0 := c.Clock().Now()
		for r := 0; r < reps; r++ {
			if err := p.LoadBlock(id, []uint64{0}, []uint64{uint64(size)}, dst); err != nil {
				return err
			}
		}
		copyT := c.Clock().Now() - t0
		if dst[0] != buf[0] || dst[size-1] != buf[size-1] {
			return fmt.Errorf("copy read-back mismatch")
		}

		t1 := c.Clock().Now()
		for r := 0; r < reps; r++ {
			v, err := p.LoadBlockView(id, []uint64{0}, []uint64{uint64(size)})
			if err != nil {
				return err
			}
			raw, err := v.Bytes()
			if err != nil {
				return err
			}
			// Touch both ends: the view is usable data, not just a handle.
			if raw[0] != buf[0] || raw[size-1] != buf[size-1] {
				return fmt.Errorf("view read-back mismatch")
			}
			if err := v.Close(); err != nil {
				return err
			}
		}
		viewT := c.Clock().Now() - t1

		cmx, err := c.AllreduceU64(uint64(copyT), mpi.OpMax)
		if err != nil {
			return err
		}
		vmx, err := c.AllreduceU64(uint64(viewT), mpi.OpMax)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			cell.copyT = time.Duration(cmx) / time.Duration(reps)
			cell.viewT = time.Duration(vmx) / time.Duration(reps)
			snap := p.Metrics()
			cell.zeroCopy = snap.Get("pmemcpy_view_zero_copy_total")
			cell.fallback = snap.Get("pmemcpy_view_fallback_total")
		}
		return p.Munmap()
	})
	return cell, err
}

// runViewsAblation is E18: the zero-copy read view experiment. The copying
// load streams every byte through the device's read ports, so its virtual
// time grows with the transfer; a leased view charges one read-latency hop to
// plan and pin the block and never moves the bytes. The sweep holds the
// workload to the view layer's fast path — one stored block, identity codec —
// and varies only the transfer size; the bp4 rows drive the same requests
// through the transparent fallback, where the view must cost what the copy
// costs (plus nothing) and the counters must attribute every open to the
// fallback path.
func runViewsAblation(rankCounts []int, base harness.Params) ([]harness.Result, error) {
	const reps = 4
	ranks := rankCounts[0]
	sizes := []int64{4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20}

	var all []harness.Result
	fmt.Printf("E18 — ZERO-COPY LEASED READ VIEWS (virtual time per read, %d ranks, %d reps):\n", ranks, reps)
	fmt.Printf("%-8s %12s %12s %10s %18s\n", "SIZE", "COPY", "VIEW", "SPEEDUP", "ZERO-COPY/FALLBK")
	fmt.Println(strings.Repeat("-", 64))
	var gateErr error
	for _, size := range sizes {
		cell, err := runViewsCase(base.Config, ranks, "raw", size, reps)
		if err != nil {
			return all, fmt.Errorf("views ablation size=%d: %w", size, err)
		}
		speedup := float64(cell.copyT) / float64(cell.viewT)
		fmt.Printf("%-8s %11.6fs %11.6fs %9.2fx %12d/%d\n",
			sizeLabel(size), cell.copyT.Seconds(), cell.viewT.Seconds(), speedup,
			cell.zeroCopy, cell.fallback)
		if cell.fallback != 0 || cell.zeroCopy == 0 {
			return all, fmt.Errorf("views ablation size=%d: identity-codec single-block reads took the fallback path (%d zero-copy, %d fallback)",
				size, cell.zeroCopy, cell.fallback)
		}
		if size >= viewsGateSize && speedup < viewsSpeedupTarget && gateErr == nil {
			gateErr = fmt.Errorf("views ablation: %s view speedup %.2fx below the %.1fx target",
				sizeLabel(size), speedup, viewsSpeedupTarget)
		}
		for _, row := range []struct {
			variant string
			d       time.Duration
		}{{"copy", cell.copyT}, {"view", cell.viewT}} {
			all = append(all, harness.Result{
				Library: fmt.Sprintf("%s/%s", row.variant, sizeLabel(size)),
				Ranks:   ranks,
				Bytes:   int64(ranks) * size,
				Read:    row.d,
			})
		}
	}

	// Fallback parity: the same sweep point under bp4, where nothing may
	// alias. The view must not be slower than the copy beyond planning noise,
	// and every open must count as a fallback.
	cell, err := runViewsCase(base.Config, ranks, "bp4", viewsGateSize, reps)
	if err != nil {
		return all, fmt.Errorf("views ablation bp4 fallback: %w", err)
	}
	ratio := float64(cell.viewT) / float64(cell.copyT)
	fmt.Printf("\nfallback parity (bp4, %s): copy %.6fs, view %.6fs (%.2fx), %d/%d zero-copy/fallback\n",
		sizeLabel(viewsGateSize), cell.copyT.Seconds(), cell.viewT.Seconds(), ratio,
		cell.zeroCopy, cell.fallback)
	if cell.zeroCopy != 0 || cell.fallback == 0 {
		return all, fmt.Errorf("views ablation: bp4 reads reported %d zero-copy opens, want pure fallback", cell.zeroCopy)
	}
	if ratio > 1.05 {
		return all, fmt.Errorf("views ablation: bp4 fallback view costs %.2fx the copying load, want parity", ratio)
	}
	all = append(all, harness.Result{
		Library: "view-bp4/" + sizeLabel(viewsGateSize),
		Ranks:   ranks,
		Bytes:   int64(ranks) * viewsGateSize,
		Read:    cell.viewT,
	})
	if gateErr != nil {
		return all, gateErr
	}
	fmt.Printf("verdict: zero-copy gate passed (>= %.1fx on single-block reads >= %s)\n\n",
		viewsSpeedupTarget, sizeLabel(viewsGateSize))
	return all, nil
}

func sizeLabel(size int64) string {
	if size >= 1<<20 {
		return fmt.Sprintf("%dM", size>>20)
	}
	return fmt.Sprintf("%dK", size>>10)
}
