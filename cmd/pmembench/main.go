// Command pmembench regenerates the paper's evaluation: Figure 6 (writes)
// and Figure 7 (reads) of the 40 GB 3-D domain workload across ADIOS,
// NetCDF-4, pNetCDF, PMCPY-A and PMCPY-B, plus the design-choice ablations
// catalogued in DESIGN.md (staging, layout, MAP_SYNC, serializer, fill mode).
//
// The workload runs at full modelled size on any host: the machine profile
// is scaled so the physical footprint stays within -phys bytes while virtual
// times correspond to the modelled -size (see sim.Config.Scale).
//
// Examples:
//
//	pmembench -fig all
//	pmembench -fig 6 -procs 8,16,24,32,48 -runs 3
//	pmembench -ablation serializer -procs 24
//	pmembench -fig all -csv results.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pmemcpy/internal/adios"
	"pmemcpy/internal/core"
	"pmemcpy/internal/harness"
	"pmemcpy/internal/netcdf"
	"pmemcpy/internal/obs"
	"pmemcpy/internal/pio"
	"pmemcpy/internal/pnetcdf"
	"pmemcpy/internal/sim"
	"pmemcpy/internal/workload"
)

func main() {
	var (
		fig       = flag.String("fig", "all", `figure to regenerate: "6" (writes), "7" (reads), "all", or "none"`)
		procs     = flag.String("procs", "8,16,24,32,48", "comma-separated process counts")
		size      = flag.Float64("size", 40e9, "modelled workload bytes (the paper: 40 GB)")
		phys      = flag.Float64("phys", 256e6, "physical memory budget for the data (sets the profile scale)")
		vars      = flag.Int("vars", 10, "number of 3-D rectangles")
		runs      = flag.Int("runs", 1, "repetitions to average (the paper: 3)")
		verify    = flag.Bool("verify", false, "verify every byte read back")
		ablation  = flag.String("ablation", "", "run an ablation instead: staging | layout | mapsync | serializer | fill | chunked | parallel | readparallel | obs | integrity | async | pools | views")
		parallel  = flag.Int("parallel", 0, "per-rank copy workers for the pMEMCPY libraries (<=1: serial)")
		readpar   = flag.Int("readparallel", 0, "per-rank gather workers for the pMEMCPY libraries (0: follow -parallel, 1: serial)")
		pattern   = flag.String("pattern", "same", "read access pattern: same | restart | plane")
		readprocs = flag.Int("readprocs", 0, "reader count for the restart pattern (0 = same as writers)")
		csvPath   = flag.String("csv", "", "also write results as CSV to this file")
		metrics   = flag.String("metrics", "", "capture per-phase observability snapshots and write a Prometheus-style exposition to this file")
		faults    = flag.Bool("faults", false, "run the fault-injection smoke suite instead of benchmarks")
	)
	flag.Parse()

	if *faults {
		os.Exit(runFaults())
	}

	rankCounts, err := parseProcs(*procs)
	if err != nil {
		fatal(err)
	}
	scale := *size / *phys
	if scale < 1 {
		scale = 1
	}
	pat, err := workload.ParsePattern(*pattern)
	if err != nil {
		fatal(err)
	}
	base := harness.Params{
		TotalBytes:      int64(*size / scale),
		Vars:            *vars,
		Config:          sim.DefaultConfig().Scale(scale),
		Verify:          *verify,
		Runs:            *runs,
		Pattern:         pat,
		ReadRanks:       *readprocs,
		Parallelism:     *parallel,
		ReadParallelism: *readpar,
		Metrics:         *metrics != "",
	}
	fmt.Printf("pmembench: modelled %.1f GB across %d rectangles, profile scale %.0fx (physical %.0f MB)\n\n",
		*size/1e9, *vars, scale, float64(base.TotalBytes)/1e6)

	var results []harness.Result
	switch {
	case *ablation == "obs":
		results, err = runObsAblation(rankCounts, base)
	case *ablation == "integrity":
		results, err = runIntegrityAblation(rankCounts, base)
	case *ablation == "async":
		results, err = runAsyncAblation(rankCounts, base)
	case *ablation == "pools":
		results, err = runPoolsAblation(rankCounts, base)
	case *ablation == "views":
		results, err = runViewsAblation(rankCounts, base)
	case *ablation != "":
		results, err = runAblation(*ablation, rankCounts, base)
	default:
		libs := []pio.Library{
			adios.Library{},
			netcdf.Library{},
			pnetcdf.Library{},
			core.Library{},
			core.Library{MapSync: true},
		}
		results, err = harness.Sweep(libs, rankCounts, base)
		if err == nil {
			printFigures(*fig, results)
			printClaims(results, rankCounts)
		}
	}
	if err != nil {
		fatal(err)
	}
	if *ablation != "" {
		fmt.Printf("ABLATION %q (writes):\n", *ablation)
		harness.Table(os.Stdout, results, "write")
		fmt.Printf("\nABLATION %q (reads):\n", *ablation)
		harness.Table(os.Stdout, results, "read")
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		harness.CSV(f, results)
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, results); err != nil {
			fatal(err)
		}
		fmt.Printf("\nmetrics exposition written to %s\n", *metrics)
	}
}

// writeMetrics renders every captured per-phase snapshot as one Prometheus
// text exposition, with library/ranks/phase attached to each series.
func writeMetrics(path string, results []harness.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, r := range results {
		for _, ph := range []struct {
			name string
			snap obs.Snapshot
		}{{"write", r.WriteMetrics}, {"read", r.ReadMetrics}} {
			if len(ph.snap.Metrics) == 0 {
				continue
			}
			fmt.Fprintf(f, "# library=%s ranks=%d phase=%s\n", r.Library, r.Ranks, ph.name)
			if err := ph.snap.WriteProm(f,
				obs.Label{Key: "library", Value: r.Library},
				obs.Label{Key: "ranks", Value: strconv.Itoa(r.Ranks)},
				obs.Label{Key: "phase", Value: ph.name},
			); err != nil {
				f.Close()
				return err
			}
			fmt.Fprintln(f)
		}
	}
	return f.Close()
}

// runObsAblation is E14: the observability overhead experiment. The
// instrumentation layer never touches the virtual clock, so its real cost is
// host wall-clock only; each variant's full sweep repeats obsReps times and
// keeps the fastest wall time, the usual defense against scheduler noise.
// Virtual phase times carry a tiny (ppm-scale) scheduling jitter that
// pre-dates instrumentation — which rank wins an arena steal or rebuilds a
// variable's DRAM block index first is scheduling-dependent — so each
// variant's virtual times are compared in ppm against the baseline's own
// rep-to-rep jitter rather than for bit equality.
func runObsAblation(rankCounts []int, base harness.Params) ([]harness.Result, error) {
	const obsReps = 7
	variants := []struct {
		name    string
		lib     pio.Library
		metrics bool
	}{
		// Counters are always on; "base" is the library as every other
		// experiment runs it. "hist" adds latency/shape histograms (the
		// WithMetrics surface plus per-phase snapshot capture), "trace"
		// additionally records operation spans with device persist points.
		{"base", named{core.Library{}, "base"}, false},
		{"hist", named{core.Library{Metrics: true}, "hist"}, true},
		{"trace", named{core.Library{Metrics: true, Tracing: true}, "trace"}, true},
	}
	type row struct {
		name  string
		walls []time.Duration
		reps  [][]harness.Result
	}

	// Untimed warmup so the first timed variant doesn't absorb one-time costs
	// (page faults, allocator growth).
	if _, err := harness.Sweep([]pio.Library{variants[0].lib}, rankCounts, base); err != nil {
		return nil, fmt.Errorf("obs ablation warmup: %w", err)
	}

	// Reps are interleaved round-robin across variants (not run as one block
	// per variant) so slow machine drift — thermal throttling, competing
	// load — lands on every variant equally. Overhead is the ratio of
	// per-variant median walls, which is robust to slow or lucky outlier
	// rounds on a shared machine.
	rows := make([]row, len(variants))
	for i, v := range variants {
		rows[i].name = v.name
	}
	for rep := 0; rep < obsReps; rep++ {
		for i, v := range variants {
			p := base
			p.Metrics = v.metrics
			t0 := time.Now()
			res, err := harness.Sweep([]pio.Library{v.lib}, rankCounts, p)
			wall := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("obs ablation %q: %w", v.name, err)
			}
			rows[i].walls = append(rows[i].walls, wall)
			rows[i].reps = append(rows[i].reps, res)
		}
	}
	var all []harness.Result
	for i := range rows {
		all = append(all, rows[i].reps[len(rows[i].reps)-1]...)
	}

	// devPPM is the worst-case relative phase-time deviation between two
	// result sets, in parts per million, across both phases.
	devPPM := func(a, b []harness.Result) float64 {
		var worst float64
		rel := func(x, y time.Duration) float64 {
			if y == 0 {
				return 0
			}
			d := 1e6 * (float64(x) - float64(y)) / float64(y)
			if d < 0 {
				d = -d
			}
			return d
		}
		for i := range a {
			if d := rel(a[i].Write, b[i].Write); d > worst {
				worst = d
			}
			if d := rel(a[i].Read, b[i].Read); d > worst {
				worst = d
			}
		}
		return worst
	}
	baseRow := rows[0]
	ref := baseRow.reps[0]
	var baseJitter float64
	for _, rep := range baseRow.reps[1:] {
		if d := devPPM(rep, ref); d > baseJitter {
			baseJitter = d
		}
	}
	median := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	min := func(v []float64) float64 {
		m := v[0]
		for _, x := range v[1:] {
			if x < m {
				m = x
			}
		}
		return m
	}
	secs := func(ws []time.Duration) []float64 {
		out := make([]float64, len(ws))
		for j, w := range ws {
			out[j] = w.Seconds()
		}
		return out
	}
	baseWalls := secs(baseRow.walls)
	fmt.Printf("E14 — OBSERVABILITY OVERHEAD (host wall-clock of the full sweep, %d interleaved rounds):\n", obsReps)
	fmt.Printf("%-8s %10s %10s %10s  %s\n", "VARIANT", "MIN", "MEDIAN", "OVERHEAD", "VIRTUAL TIME VS BASE")
	fmt.Println(strings.Repeat("-", 84))
	var overheads []float64
	for i, r := range rows {
		walls := secs(r.walls)
		over := "-"
		if i != 0 {
			// Best-of: the minimum is the least noise-contaminated sample of
			// a CPU-bound run; everything above it is interference.
			o := 100 * (min(walls)/min(baseWalls) - 1)
			overheads = append(overheads, o)
			over = fmt.Sprintf("%+.2f%%", o)
		}
		var dev float64
		for _, rep := range r.reps {
			if d := devPPM(rep, ref); d > dev {
				dev = d
			}
		}
		verdict := fmt.Sprintf("dev %.1f ppm", dev)
		if i == 0 {
			verdict = fmt.Sprintf("self-jitter %.1f ppm", dev)
		}
		fmt.Printf("%-8s %9.3fs %9.3fs %10s  %s (base self-jitter %.1f ppm)\n",
			r.name, min(walls), median(walls), over, verdict, baseJitter)
	}
	noise := 100 * (median(baseWalls)/min(baseWalls) - 1)
	fmt.Printf("machine noise floor (base median vs min): %.1f%%\n", noise)
	worst := overheads[0]
	for _, o := range overheads[1:] {
		if o > worst {
			worst = o
		}
	}
	fmt.Printf("verdict: worst-case instrumentation overhead %+.2f%% (target < 2%%, noise floor %.1f%%)\n\n", worst, noise)
	return all, nil
}

func printFigures(fig string, results []harness.Result) {
	if fig == "6" || fig == "all" {
		fmt.Println("FIGURE 6 — I/O LIBRARY VS # PROCESSES (WRITES), time (s):")
		harness.Table(os.Stdout, results, "write")
		fmt.Println()
	}
	if fig == "7" || fig == "all" {
		fmt.Println("FIGURE 7 — I/O LIBRARY VS # PROCESSES (READS), time (s):")
		harness.Table(os.Stdout, results, "read")
		fmt.Println()
	}
}

// printClaims compares the measured series against the paper's headline
// statements at the reference process count (24 if present).
func printClaims(results []harness.Result, rankCounts []int) {
	ref := rankCounts[0]
	for _, n := range rankCounts {
		if n == 24 {
			ref = 24
		}
	}
	at := func(lib string) (harness.Result, bool) {
		for _, r := range results {
			if r.Library == lib && r.Ranks == ref {
				return r, true
			}
		}
		return harness.Result{}, false
	}
	a, okA := at("PMCPY-A")
	ad, okAd := at("ADIOS")
	nc, okNc := at("NetCDF")
	pn, okPn := at("pNetCDF")
	b, okB := at("PMCPY-B")
	if !(okA && okAd && okNc && okPn && okB) {
		return
	}
	fmt.Printf("PAPER CLAIMS AT %d PROCS (measured):\n", ref)
	fmt.Printf("  writes: PMCPY-A vs ADIOS   %.2fx faster (paper: ~1.15x)\n", harness.Speedup(ad, a, "write"))
	fmt.Printf("  writes: PMCPY-A vs NetCDF  %.2fx faster (paper: ~2.5x)\n", harness.Speedup(nc, a, "write"))
	fmt.Printf("  writes: PMCPY-A vs pNetCDF %.2fx faster (paper: ~2.5x)\n", harness.Speedup(pn, a, "write"))
	fmt.Printf("  reads:  PMCPY-A vs ADIOS   %.2fx faster (paper: ~2x)\n", harness.Speedup(ad, a, "read"))
	fmt.Printf("  reads:  PMCPY-A vs NetCDF  %.2fx faster (paper: ~5x)\n", harness.Speedup(nc, a, "read"))
	fmt.Printf("  reads:  PMCPY-B vs ADIOS   %.2fx (paper: ~1x, MAP_SYNC erases the benefit)\n",
		harness.Speedup(ad, b, "read"))
}

func runAblation(name string, rankCounts []int, base harness.Params) ([]harness.Result, error) {
	var libs []pio.Library
	switch name {
	case "staging":
		libs = []pio.Library{
			named{core.Library{}, "direct"},
			named{core.Library{Staged: true}, "staged"},
		}
	case "layout":
		libs = []pio.Library{
			named{core.Library{}, "hashtable"},
			named{core.Library{Layout: core.LayoutHierarchy}, "hierarchy"},
		}
	case "mapsync":
		libs = []pio.Library{core.Library{}, core.Library{MapSync: true}}
	case "serializer":
		libs = []pio.Library{
			named{core.Library{Codec: "bp4"}, "bp4"},
			named{core.Library{Codec: "flat"}, "flat"},
			named{core.Library{Codec: "cbin"}, "cbin"},
			named{core.Library{Codec: "raw"}, "raw"},
		}
	case "parallel":
		// The copy-engine sweep: the paper's procs sweep reproduced as a
		// per-rank worker sweep (run with a fixed -procs, e.g. -procs 8).
		for _, k := range []int{1, 2, 4, 8, 16, 32, 48} {
			libs = append(libs, named{core.Library{Parallelism: k}, fmt.Sprintf("par=%d", k)})
		}
	case "readparallel":
		// The gather-engine sweep: read-side mirror of "parallel". Writes are
		// kept serial so the write column stays flat and only the read column
		// responds to the worker count (run with a fixed -procs, e.g. -procs 8).
		for _, k := range []int{1, 2, 4, 8, 16, 32} {
			libs = append(libs, named{core.Library{ReadParallelism: k}, fmt.Sprintf("rpar=%d", k)})
		}
	case "fill":
		libs = []pio.Library{
			named{netcdf.Library{}, "nofill"},
			named{netcdf.Library{Fill: true}, "fill"},
		}
	case "chunked":
		libs = []pio.Library{
			named{netcdf.Library{}, "contiguous"},
			named{netcdf.Library{Chunked: true}, "chunked"},
			named{netcdf.Library{Chunked: true, Filter: "shuffle+rle"}, "chunked+flt"},
		}
	default:
		return nil, fmt.Errorf("unknown ablation %q", name)
	}
	return harness.Sweep(libs, rankCounts, base)
}

// named overrides a library's display name for ablation tables.
type named struct {
	pio.Library
	name string
}

func (n named) Name() string { return n.name }

// Configure forwards capability configuration to the wrapped library,
// keeping the display name. This is the pitfall pio.Capabilities exists to
// close: the old probe-per-interface protocol silently lost capabilities
// behind wrappers like this one unless every interface was re-plumbed, so
// harness configuration (worker pools, verified reads, async batching,
// striping) never reached the inner library.
func (n named) Configure(c pio.Capabilities) pio.Library {
	if cz, ok := n.Library.(pio.Configurable); ok {
		return named{cz.Configure(c), n.name}
	}
	return n
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid process count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no process counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmembench:", err)
	os.Exit(1)
}
