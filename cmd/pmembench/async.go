package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"pmemcpy/internal/core"
	"pmemcpy/internal/harness"
	"pmemcpy/internal/mpi"
	"pmemcpy/internal/node"
	"pmemcpy/internal/pio"
	"pmemcpy/internal/serial"
	"pmemcpy/internal/sim"
)

// asyncSpeedupTarget is the E16 gate: with coalescing on (window 32) the
// smallest-transfer write sweep must be at least this much faster than the
// synchronous path. Group commit exists to amortize the three fixed per-op
// costs that dominate small writes (transaction begin/commit, the persist
// barrier, the metadata publish); if it cannot buy 1.5x on 1 KB transfers,
// the pipeline has regressed into pure bookkeeping.
const asyncSpeedupTarget = 1.5

// asyncCell is one (variant, size, ranks) measurement of the E16 sweep.
type asyncCell struct {
	write, read time.Duration
	submitted   int64
	publishes   int64
	coalesced   int64
	batches     int64
}

// runAsyncCase writes perRank bytes per rank as adjacent chunk-sized
// sub-stores of one per-rank array — synchronously, or through the submission
// queue with the given coalesce window — and times the write (submit..drain)
// and a full read-back, virtual time, max over ranks.
func runAsyncCase(ranks int, cfg sim.Config, codec string, window int, async bool, chunk, perRank int64) (asyncCell, error) {
	devSize := int64(ranks)*perRank*3 + (64 << 20)
	n := node.New(cfg, devSize)
	n.Machine.SetConcurrency(ranks)
	var cell asyncCell
	_, err := mpi.Run(n.Machine, ranks, func(c *mpi.Comm) error {
		opts := []core.MmapOption{core.WithCodec(codec)}
		if async {
			opts = append(opts, core.WithAsync(), core.WithCoalesceWindow(window))
		}
		p, err := core.Mmap(c, n, "/e16.pool", opts...)
		if err != nil {
			return err
		}
		id := fmt.Sprintf("rank%d", c.Rank())
		if err := p.Alloc(id, serial.Uint8, []uint64{uint64(perRank)}); err != nil {
			return err
		}
		buf := make([]byte, chunk)
		for i := range buf {
			buf[i] = byte(c.Rank() + i)
		}
		t0 := c.Clock().Now()
		if async {
			for off := int64(0); off < perRank; off += chunk {
				p.StoreBlockAsync(id, []uint64{uint64(off)}, []uint64{uint64(chunk)}, buf)
			}
			if err := p.Flush(context.Background()); err != nil {
				return err
			}
		} else {
			for off := int64(0); off < perRank; off += chunk {
				if err := p.StoreBlock(id, []uint64{uint64(off)}, []uint64{uint64(chunk)}, buf); err != nil {
					return err
				}
			}
		}
		wdt := c.Clock().Now() - t0
		dst := make([]byte, perRank)
		t1 := c.Clock().Now()
		if err := p.LoadBlock(id, []uint64{0}, []uint64{uint64(perRank)}, dst); err != nil {
			return err
		}
		rdt := c.Clock().Now() - t1
		for i := range dst {
			if dst[i] != buf[i%int(chunk)] {
				return fmt.Errorf("read-back mismatch at byte %d", i)
			}
		}
		wmx, err := c.AllreduceU64(uint64(wdt), mpi.OpMax)
		if err != nil {
			return err
		}
		rmx, err := c.AllreduceU64(uint64(rdt), mpi.OpMax)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			cell.write = time.Duration(wmx)
			cell.read = time.Duration(rmx)
			snap := p.Metrics()
			cell.submitted = snap.Get("pmemcpy_async_submitted_total")
			cell.publishes = snap.Get("pmemcpy_async_publishes_total")
			cell.coalesced = snap.Get("pmemcpy_async_coalesced_total")
			cell.batches = snap.Get("pmemcpy_async_batches_total")
		}
		return p.Munmap()
	})
	return cell, err
}

// runAsyncAblation is E16: the group-commit/coalescing experiment. Unlike E14
// and E15 — whose layers deliberately charge no virtual time, making them
// wall-clock experiments — the async pipeline's amortizations are visible to
// the virtual clock: fewer transactions, fewer persist barriers, and fewer
// metadata publishes per byte are genuinely less device work. So E16 sweeps
// the transfer size at a fixed per-rank volume and compares deterministic
// virtual write times: sync vs window-1 (group-commit machinery, no batching)
// vs window-32 (coalescing on), under the identity codec where adjacent
// submissions merge and under bp4 where they cannot.
func runAsyncAblation(rankCounts []int, base harness.Params) ([]harness.Result, error) {
	const perRank = int64(1 << 20)
	sizes := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	variants := []struct {
		name   string
		codec  string
		window int
		async  bool
	}{
		{"sync-raw", "raw", 0, false},
		{"w1-raw", "raw", 1, true},
		{"w32-raw", "raw", 32, true},
		{"sync-bp4", "bp4", 0, false},
		{"w32-bp4", "bp4", 32, true},
	}

	var all []harness.Result
	fmt.Printf("E16 — ASYNC GROUP COMMIT & COALESCING (virtual write time, %d KB per rank):\n", perRank>>10)
	var gateErr error
	for _, ranks := range rankCounts {
		fmt.Printf("\nranks=%d\n", ranks)
		fmt.Printf("%-10s %10s %10s %10s %10s %12s %10s\n",
			"SIZE", "SYNC-RAW", "W1-RAW", "W32-RAW", "SYNC-BP4", "W32-BP4", "COALESCE")
		fmt.Println(strings.Repeat("-", 78))
		for _, size := range sizes {
			cells := make([]asyncCell, len(variants))
			for vi, v := range variants {
				cell, err := runAsyncCase(ranks, base.Config, v.codec, v.window, v.async, size, perRank)
				if err != nil {
					return all, fmt.Errorf("async ablation %s size=%d ranks=%d: %w", v.name, size, ranks, err)
				}
				cells[vi] = cell
				all = append(all, harness.Result{
					Library: fmt.Sprintf("%s/%dK", v.name, size>>10),
					Ranks:   ranks,
					Bytes:   int64(ranks) * perRank,
					Write:   cell.write,
					Read:    cell.read,
				})
			}
			w32 := cells[2]
			ratio := 0.0
			if w32.publishes > 0 {
				ratio = float64(w32.submitted) / float64(w32.publishes)
			}
			fmt.Printf("%-10s %9.3fs %9.3fs %9.3fs %9.3fs %11.3fs %9.1fx\n",
				fmt.Sprintf("%dK", size>>10),
				cells[0].write.Seconds(), cells[1].write.Seconds(), cells[2].write.Seconds(),
				cells[3].write.Seconds(), cells[4].write.Seconds(), ratio)
			if size == sizes[0] {
				speedup := float64(cells[0].write) / float64(cells[2].write)
				vsW1 := float64(cells[1].write) / float64(cells[2].write)
				fmt.Printf("           -> %dK speedup: w32 vs sync %.2fx (target >= %.1fx), w32 vs w1 %.2fx, "+
					"%d submissions in %d batches, %d merges\n",
					size>>10, speedup, asyncSpeedupTarget, vsW1,
					w32.submitted, w32.batches, w32.coalesced)
				if speedup < asyncSpeedupTarget && gateErr == nil {
					gateErr = fmt.Errorf("async ablation: %d KB write speedup %.2fx below the %.1fx target (ranks=%d)",
						size>>10, speedup, asyncSpeedupTarget, ranks)
				}
			}
		}
	}

	// Harness parity: the same pipeline through the pio surface — Params.Async
	// applies pio.Asyncable, session writes queue, Close drains — with every
	// byte verified on read-back. This is a correctness cross-check on the
	// bulk-transfer workload, not a small-write measurement.
	p := base
	p.Verify = true
	p.Async = true
	p.CoalesceWindow = 32
	libs := []pio.Library{named{core.Library{Codec: "raw"}, "harness-async"}}
	res, err := harness.Sweep(libs, rankCounts[:1], p)
	if err != nil {
		return all, fmt.Errorf("async ablation harness parity: %w", err)
	}
	all = append(all, res...)
	fmt.Printf("\nharness parity (pio surface, verified read-back): %s\n", res[0])
	if gateErr != nil {
		return all, gateErr
	}
	fmt.Printf("verdict: coalescing gate passed (>= %.1fx on the smallest transfer)\n\n", asyncSpeedupTarget)
	return all, nil
}
