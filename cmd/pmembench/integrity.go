package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pmemcpy/internal/core"
	"pmemcpy/internal/harness"
	"pmemcpy/internal/pio"
)

// Budgets enforced by runIntegrityAblation; exceeding either is an error, so
// `make bench-check` fails the build instead of letting a regression land.
const (
	// integrityWallBudgetPct caps the host wall-clock overhead of full
	// verified reads over the unverified baseline.
	integrityWallBudgetPct = 10.0
	// integrityVirtualBudgetPPM caps the virtual-time deviation of any
	// verify mode from the baseline. CRC verification charges no virtual
	// time, so modes must agree to within the harness's ppm-scale
	// scheduling jitter.
	integrityVirtualBudgetPPM = 1000.0
)

// runIntegrityAblation is E15: the verified-read overhead experiment. Read-
// path CRC verification deliberately charges no virtual time (the checksum
// pass streams bytes the gather moves anyway), so its real cost is host
// wall-clock only — the same measurement problem as E14, solved with
// interleaved rounds, paired per-round ratios, and ppm-checked virtual times.
func runIntegrityAblation(rankCounts []int, base harness.Params) ([]harness.Result, error) {
	const reps = 9
	variants := []struct {
		name   string
		verify int
	}{
		// "off" is the library exactly as every other experiment runs it;
		// "sampled" fully verifies every 8th load; "full" verifies every
		// gathered block of every load.
		{"off", 0},
		{"sampled", 1},
		{"full", 2},
	}
	type row struct {
		name  string
		walls []time.Duration
		reps  [][]harness.Result
	}

	mklib := func(name string, mode int) pio.Library {
		return named{core.Library{VerifyReads: core.VerifyMode(mode)}, name}
	}

	// Untimed warmup absorbs one-time costs (page faults, allocator growth).
	if _, err := harness.Sweep([]pio.Library{mklib("off", 0)}, rankCounts, base); err != nil {
		return nil, fmt.Errorf("integrity ablation warmup: %w", err)
	}

	rows := make([]row, len(variants))
	for i, v := range variants {
		rows[i].name = v.name
	}
	for rep := 0; rep < reps; rep++ {
		for i, v := range variants {
			p := base
			p.VerifyReads = v.verify
			t0 := time.Now()
			res, err := harness.Sweep([]pio.Library{mklib(v.name, v.verify)}, rankCounts, p)
			wall := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("integrity ablation %q: %w", v.name, err)
			}
			rows[i].walls = append(rows[i].walls, wall)
			rows[i].reps = append(rows[i].reps, res)
		}
	}
	var all []harness.Result
	for i := range rows {
		all = append(all, rows[i].reps[len(rows[i].reps)-1]...)
	}

	devPPM := func(a, b []harness.Result) float64 {
		var worst float64
		rel := func(x, y time.Duration) float64 {
			if y == 0 {
				return 0
			}
			d := 1e6 * (float64(x) - float64(y)) / float64(y)
			if d < 0 {
				d = -d
			}
			return d
		}
		for i := range a {
			if d := rel(a[i].Write, b[i].Write); d > worst {
				worst = d
			}
			if d := rel(a[i].Read, b[i].Read); d > worst {
				worst = d
			}
		}
		return worst
	}
	baseRow := rows[0]
	ref := baseRow.reps[0]
	var baseJitter float64
	for _, rep := range baseRow.reps[1:] {
		if d := devPPM(rep, ref); d > baseJitter {
			baseJitter = d
		}
	}
	median := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	min := func(v []float64) float64 {
		m := v[0]
		for _, x := range v[1:] {
			if x < m {
				m = x
			}
		}
		return m
	}
	secs := func(ws []time.Duration) []float64 {
		out := make([]float64, len(ws))
		for j, w := range ws {
			out[j] = w.Seconds()
		}
		return out
	}
	// Overhead is estimated two ways and the gate takes the smaller. Both
	// estimators are upward-biased by scheduler noise, but differently:
	// min-of-walls (each variant's cleanest round) reads phantom overhead
	// when the baseline drew one lucky round; the median of paired per-round
	// ratios (mode vs off within the same round) reads phantom overhead under
	// bursty within-round interference. Noise rarely inflates both at once,
	// while a genuine regression lifts both — so min(estimators) is a stable
	// CI gate on a shared host.
	pairedOverhead := func(v, base []float64) (best, mins, med float64) {
		ratios := make([]float64, len(v))
		for j := range v {
			ratios[j] = v[j] / base[j]
		}
		mins = 100 * (min(v)/min(base) - 1)
		med = 100 * (median(ratios) - 1)
		best = mins
		if med < best {
			best = med
		}
		return best, mins, med
	}
	baseWalls := secs(baseRow.walls)
	fmt.Printf("E15 — VERIFIED-READ OVERHEAD (host wall-clock of the full sweep, %d interleaved rounds):\n", reps)
	fmt.Printf("%-8s %10s %10s %-22s %s\n", "MODE", "MIN", "MEDIAN", "OVERHEAD", "VIRTUAL TIME VS OFF")
	fmt.Println(strings.Repeat("-", 84))
	var fullOver float64
	var worstDev float64
	for i, r := range rows {
		walls := secs(r.walls)
		over := "-"
		if i != 0 {
			best, mins, med := pairedOverhead(walls, baseWalls)
			over = fmt.Sprintf("%+.2f%% (min %+.1f%%, med %+.1f%%)", best, mins, med)
			if r.name == "full" {
				fullOver = best
			}
		}
		var dev float64
		for _, rep := range r.reps {
			if d := devPPM(rep, ref); d > dev {
				dev = d
			}
		}
		if i != 0 && dev > worstDev {
			worstDev = dev
		}
		verdict := fmt.Sprintf("dev %.1f ppm", dev)
		if i == 0 {
			verdict = fmt.Sprintf("self-jitter %.1f ppm", dev)
		}
		fmt.Printf("%-8s %9.3fs %9.3fs %-22s %s (off self-jitter %.1f ppm)\n",
			r.name, min(walls), median(walls), over, verdict, baseJitter)
	}
	noise := 100 * (median(baseWalls)/min(baseWalls) - 1)
	fmt.Printf("machine noise floor (off median vs min): %.1f%%\n", noise)
	fmt.Printf("verdict: full-verify overhead %+.2f%% (budget %.0f%%), worst virtual dev %.1f ppm (budget %.0f ppm)\n\n",
		fullOver, integrityWallBudgetPct, worstDev, integrityVirtualBudgetPPM)
	if fullOver > integrityWallBudgetPct {
		return all, fmt.Errorf("integrity ablation: full-verify wall overhead %+.2f%% exceeds the %.0f%% budget",
			fullOver, integrityWallBudgetPct)
	}
	if worstDev > integrityVirtualBudgetPPM {
		return all, fmt.Errorf("integrity ablation: virtual time deviates %.1f ppm from mode=off (budget %.0f ppm) — read-path verification must not charge the clock",
			worstDev, integrityVirtualBudgetPPM)
	}
	return all, nil
}
