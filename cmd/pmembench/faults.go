package main

import (
	"context"
	"errors"
	"fmt"

	"pmemcpy/internal/bytesview"
	"pmemcpy/internal/core"
	"pmemcpy/internal/serial"
)

// runFaults is the -faults smoke mode: a compact crash-point exploration of
// the serial and sharded store paths — every persist point reached by the
// workloads is crash-tested (clean and torn, under the lose-all and random
// adversaries) and every recovered pool must pass the structural checker,
// the core metadata invariants, and data verification. Exit 0 means full
// coverage with zero failures; the coverage maps are printed either way.
func runFaults() int {
	fill := func(elems int, v float64) []byte {
		vals := make([]float64, elems)
		for i := range vals {
			vals[i] = v
		}
		return bytesview.Bytes(vals)
	}
	uniform := func(p *core.PMEM, id string, elems int) (float64, error) {
		dst := make([]byte, elems*8)
		if err := p.LoadBlock(id, []uint64{0}, []uint64{uint64(elems)}, dst); err != nil {
			return 0, err
		}
		vals := bytesview.OfCopy[float64](dst)
		for i, v := range vals {
			if v != vals[0] {
				return 0, fmt.Errorf("%s torn: [0]=%g but [%d]=%g", id, vals[0], i, v)
			}
		}
		return vals[0], nil
	}
	oldOrNew := func(id string, elems int) func(*core.PMEM) error {
		return func(p *core.PMEM) error {
			v, err := uniform(p, id, elems)
			if err != nil {
				return err
			}
			if v != 1 && v != 2 {
				return fmt.Errorf("%s = all %g, want 1 or 2", id, v)
			}
			return nil
		}
	}

	scripts := []core.Script{
		{
			Name:    "serial",
			DevSize: 8 << 20,
			Setup: func(p *core.PMEM) error {
				if err := p.Alloc("A", serial.Float64, []uint64{64}); err != nil {
					return err
				}
				if err := p.StoreBlock("A", []uint64{0}, []uint64{64}, fill(64, 1)); err != nil {
					return err
				}
				return p.Alloc("G", serial.Float64, []uint64{8})
			},
			Run: func(p *core.PMEM) error {
				if err := p.StoreBlock("A", []uint64{0}, []uint64{64}, fill(64, 2)); err != nil {
					return err
				}
				if err := p.StoreBlock("G", []uint64{0}, []uint64{8}, fill(8, 7)); err != nil {
					return err
				}
				if _, err := p.Delete("G"); err != nil {
					return err
				}
				_, err := p.Compact(context.Background(), "A")
				return err
			},
			Verify: func(p *core.PMEM) error {
				if err := oldOrNew("A", 64)(p); err != nil {
					return err
				}
				if v, err := uniform(p, "G", 8); err == nil {
					if v != 7 {
						return fmt.Errorf("G = all %g, want 7", v)
					}
				} else if !errors.Is(err, core.ErrNotFound) {
					return err
				}
				return nil
			},
		},
		{
			Name:    "parallel",
			DevSize: 32 << 20,
			Options: &core.Options{Parallelism: 4},
			Setup: func(p *core.PMEM) error {
				if err := p.Alloc("A", serial.Float64, []uint64{32768}); err != nil {
					return err
				}
				return p.StoreBlock("A", []uint64{0}, []uint64{32768}, fill(32768, 1))
			},
			Run: func(p *core.PMEM) error {
				return p.StoreBlock("A", []uint64{0}, []uint64{32768}, fill(32768, 2))
			},
			Verify: oldOrNew("A", 32768),
		},
	}

	exit := 0
	for _, s := range scripts {
		rep, err := core.Explore(s, core.ExploreOptions{Tear: true})
		if err != nil {
			fmt.Printf("faults: %s: %v\n", s.Name, err)
			return 1
		}
		fmt.Print(rep.Format())
		if len(rep.Failures) > 0 || len(rep.Unexplored()) > 0 {
			exit = 1
		}
	}
	if exit == 0 {
		fmt.Println("faults: every reached persist point crash-tested, all recoveries verified")
	}
	return exit
}
